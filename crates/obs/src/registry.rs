//! Live metrics: a registry of named counters, gauges, and latency
//! histograms with cheap point-in-time snapshot export.
//!
//! The span/report layer ([`crate::span`], [`crate::report`]) is
//! post-hoc: it aggregates a finished run into one record. A long-lived
//! process (the `ppscan-serve` dispatcher) needs the opposite shape —
//! instruments that are *always on* and can be sampled while the
//! process runs. The registry provides exactly three instrument kinds:
//!
//! * [`Counter`] — monotone `u64`, sharded across cache-line-padded
//!   atomics so concurrent recording from many threads never contends
//!   on one line. Reading sums the shards (reads are rare, writes hot).
//! * [`Gauge`] — an instantaneous `i64` level (queue depth, in-flight
//!   batch size, snapshot generation). A single atomic: gauges have few
//!   writers by construction.
//! * [`crate::hist::LatencyHistogram`] — shared via `Arc`, summarized
//!   into the snapshot as a [`crate::hist::LatencySummary`].
//!
//! [`MetricsRegistry::snapshot`] captures every instrument into a
//! [`MetricsSnapshot`] — versioned JSON via the hand-rolled
//! [`crate::json`] layer ([`METRICS_SCHEMA_VERSION`]), round-trip
//! exact, and embeddable as the `timeline` of a
//! [`RunReport`](crate::report::RunReport) (schema 2). A
//! [`TimelineSampler`] thread turns periodic snapshots into that
//! timeline. Snapshots are *not* atomic across instruments: each value
//! is read individually while writers keep recording, so a snapshot is
//! a consistent-enough view for dashboards and regression checks, not
//! a linearizable cut (the same contract as sampling `/proc`).

use crate::hist::{LatencyHistogram, LatencySummary};
use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema version of the JSON emitted by [`MetricsSnapshot::to_json`].
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Counter shards (power of two). Each recording thread picks one shard
/// once and sticks to it, so a 16-way sharded counter absorbs 16
/// threads of `fetch_add` traffic with zero line sharing.
const SHARDS: usize = 16;

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned on first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) & (SHARDS - 1);
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[derive(Debug, Default)]
struct ShardedU64 {
    shards: [PaddedU64; SHARDS],
}

/// A monotone counter handle. Cloning is cheap (`Arc`); all clones
/// share the same total. Recording is one relaxed `fetch_add` on the
/// calling thread's shard — safe on any hot path.
#[derive(Clone, Debug)]
pub struct Counter {
    inner: Arc<ShardedU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        SHARD.with(|&s| self.inner.shards[s].0.fetch_add(n, Relaxed));
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (sums the shards; rare-path).
    pub fn value(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.0.load(Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// An instantaneous level. Single atomic: gauges have one or a few
/// writers (queue depth is maintained by the submit/drain pair).
#[derive(Clone, Debug)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.inner.store(v, Relaxed);
    }

    /// Adjusts the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.inner.fetch_add(delta, Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.inner.load(Relaxed)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    hists: Vec<(String, Arc<LatencyHistogram>)>,
}

/// A named collection of live instruments.
///
/// Instruments are get-or-create by name ([`counter`](Self::counter),
/// [`gauge`](Self::gauge), [`histogram`](Self::histogram)); the
/// returned handles are lock-free to record into — the registry mutex
/// guards only registration and snapshotting. Registries are plain
/// values (typically one per [`Server`](../../ppscan_serve) or bench
/// run), never process-global, so tests and concurrent servers cannot
/// cross-talk.
pub struct MetricsRegistry {
    start: Instant,
    inner: Mutex<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry; `at_nanos` of its snapshots counts from here.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            start: Instant::now(),
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = lock(&self.inner);
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter {
            inner: Arc::new(ShardedU64::default()),
        };
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = lock(&self.inner);
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge {
            inner: Arc::new(AtomicI64::new(0)),
        };
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The latency histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = lock(&self.inner);
        if let Some((_, h)) = inner.hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::new());
        inner.hists.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// A point-in-time sample of every registered instrument, in
    /// registration order. Cheap: one mutex hold, one relaxed load per
    /// shard/gauge, one quantile scan per histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let at_nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let inner = lock(&self.inner);
        MetricsSnapshot {
            at_nanos,
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.value()))
                .collect(),
            histograms: inner
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        write!(
            f,
            "MetricsRegistry({} counters, {} gauges, {} histograms)",
            inner.counters.len(),
            inner.gauges.len(),
            inner.hists.len()
        )
    }
}

/// One point-in-time sample of a [`MetricsRegistry`]: every instrument
/// by name, plus the sample's offset from registry creation. The unit
/// of the serving timeline (`RunReport::timeline`, report schema 2).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry was created.
    pub at_nanos: u64,
    /// Counter totals, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels, in registration order.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, in registration order.
    pub histograms: Vec<(String, LatencySummary)>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge level by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencySummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serializes to versioned JSON. Empty sections are omitted and
    /// parse back as empty, so round trips are exact.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::Int(METRICS_SCHEMA_VERSION as i128)),
            ("at_nanos".into(), Json::from_u64(self.at_nanos)),
        ];
        if !self.counters.is_empty() {
            fields.push((
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from_u64(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            fields.push((
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Int(*v as i128)))
                        .collect(),
                ),
            ));
        }
        if !self.histograms.is_empty() {
            fields.push((
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// Deserializes from a [`Json`] value.
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing version")? as u32;
        if version != METRICS_SCHEMA_VERSION {
            return Err(format!(
                "unsupported metrics schema {version} (expected {METRICS_SCHEMA_VERSION})"
            ));
        }
        let mut snap = MetricsSnapshot {
            at_nanos: v
                .get("at_nanos")
                .and_then(Json::as_u64)
                .ok_or("snapshot missing at_nanos")?,
            ..MetricsSnapshot::default()
        };
        if let Some(Json::Obj(counters)) = v.get("counters") {
            for (n, c) in counters {
                let c = c
                    .as_u64()
                    .ok_or_else(|| format!("counter {n} is not a u64"))?;
                snap.counters.push((n.clone(), c));
            }
        }
        if let Some(Json::Obj(gauges)) = v.get("gauges") {
            for (n, g) in gauges {
                let g = g
                    .as_i64()
                    .ok_or_else(|| format!("gauge {n} is not an i64"))?;
                snap.gauges.push((n.clone(), g));
            }
        }
        if let Some(Json::Obj(hists)) = v.get("histograms") {
            for (n, h) in hists {
                snap.histograms
                    .push((n.clone(), LatencySummary::from_json(h)?));
            }
        }
        Ok(snap)
    }
}

/// Serializes a timeline (snapshot sequence) as a JSON array.
pub fn timeline_to_json(timeline: &[MetricsSnapshot]) -> Json {
    Json::Arr(timeline.iter().map(MetricsSnapshot::to_json).collect())
}

/// Parses a timeline from its JSON array form.
pub fn timeline_from_json(v: &Json) -> Result<Vec<MetricsSnapshot>, String> {
    v.as_arr()
        .ok_or("timeline is not an array")?
        .iter()
        .map(MetricsSnapshot::from_json)
        .collect()
}

/// A background thread sampling a registry at a fixed interval into a
/// timeline. [`stop`](Self::stop) takes one final sample and returns
/// the collected `Vec<MetricsSnapshot>`; dropping without `stop`
/// terminates the thread and discards the samples.
#[derive(Debug)]
pub struct TimelineSampler {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<JoinHandle<Vec<MetricsSnapshot>>>,
}

impl TimelineSampler {
    /// Starts sampling `registry` every `interval`.
    pub fn start(registry: Arc<MetricsRegistry>, interval: Duration) -> TimelineSampler {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ppscan-obs-sampler".into())
            .spawn(move || {
                let mut timeline = Vec::new();
                'sampling: loop {
                    // Sleep in short ticks so stop() returns promptly
                    // even with multi-second intervals.
                    let mut waited = Duration::ZERO;
                    while waited < interval {
                        if stop_flag.load(Relaxed) {
                            break 'sampling;
                        }
                        let tick = (interval - waited).min(Duration::from_millis(20));
                        std::thread::sleep(tick);
                        waited += tick;
                    }
                    timeline.push(registry.snapshot());
                }
                // One final sample so the timeline always covers the
                // very end of the run.
                timeline.push(registry.snapshot());
                timeline
            })
            .expect("spawn sampler thread");
        TimelineSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the timeline (ending with a final
    /// stop-time sample).
    pub fn stop(mut self) -> Vec<MetricsSnapshot> {
        self.stop.store(true, Relaxed);
        self.handle
            .take()
            .expect("sampler joined twice")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for TimelineSampler {
    fn drop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
pub(crate) use tests::arbitrary_snapshot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_by_name_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("queries");
        let b = reg.counter("queries");
        a.add(3);
        b.incr();
        assert_eq!(a.value(), 4);
        let g = reg.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("depth").value(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("queries"), Some(4));
        assert_eq!(snap.gauge("depth"), Some(5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        let g = reg.gauge("level");
        const THREADS: usize = 8;
        const OPS: u64 = 20_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = c.clone();
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..OPS {
                        c.incr();
                        // Symmetric add/sub: the gauge must return to 0.
                        g.add(1);
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * OPS);
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn snapshots_under_concurrent_writes_are_monotone() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("hits");
        const TOTAL: u64 = 200_000;
        let mut snapshots = std::thread::scope(|scope| {
            let writer = {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..TOTAL {
                        c.incr();
                    }
                })
            };
            let mut snapshots = Vec::new();
            while !writer.is_finished() {
                snapshots.push(reg.snapshot());
            }
            snapshots
        });
        snapshots.push(reg.snapshot());
        // Counter totals never go backwards across snapshots, never
        // overshoot, and the final sample sees everything.
        let mut last = 0u64;
        for s in &snapshots {
            let v = s.counter("hits").unwrap();
            assert!(v >= last, "counter went backwards: {v} < {last}");
            assert!(v <= TOTAL);
            last = v;
        }
        assert_eq!(snapshots.last().unwrap().counter("hits"), Some(TOTAL));
        // at_nanos is non-decreasing along the timeline.
        let mut last_at = 0u64;
        for s in &snapshots {
            assert!(s.at_nanos >= last_at);
            last_at = s.at_nanos;
        }
    }

    #[test]
    fn histogram_rides_along_in_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency");
        for v in [100u64, 200, 400] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let s = snap.histogram("latency").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_nanos, 400);
    }

    /// splitmix64 — mirrors the report round-trip property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    pub(crate) fn arbitrary_snapshot(rng_seed: u64) -> MetricsSnapshot {
        let mut rng = Rng(rng_seed);
        let mut snap = MetricsSnapshot {
            at_nanos: rng.next() >> 1,
            ..MetricsSnapshot::default()
        };
        for i in 0..rng.below(5) {
            snap.counters.push((format!("c{i}"), rng.next()));
        }
        for i in 0..rng.below(5) {
            let sign = if rng.below(2) == 0 { 1 } else { -1 };
            snap.gauges
                .push((format!("g{i}"), sign * (rng.below(1 << 40) as i64)));
        }
        for i in 0..rng.below(3) {
            snap.histograms.push((
                format!("h{i}"),
                LatencySummary {
                    count: rng.below(1 << 30),
                    // Round-trippable f64 (json floats use shortest
                    // round-trip formatting, so any f64 survives; keep
                    // it simple and readable anyway).
                    mean_nanos: rng.below(1 << 30) as f64 / 8.0,
                    p50_nanos: rng.below(1 << 30),
                    p90_nanos: rng.below(1 << 30),
                    p99_nanos: rng.below(1 << 30),
                    p999_nanos: rng.below(1 << 30),
                    max_nanos: rng.below(1 << 40),
                },
            ));
        }
        snap
    }

    #[test]
    fn snapshot_roundtrip_property() {
        for case in 0..200u64 {
            let snap = arbitrary_snapshot(0x5eed ^ case);
            let text = snap.to_json().to_pretty_string();
            let back = crate::json::parse(&text).unwrap();
            let parsed = MetricsSnapshot::from_json(&back)
                .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
            assert_eq!(parsed, snap, "case {case} round-trip mismatch");
        }
    }

    #[test]
    fn timeline_roundtrip() {
        let timeline: Vec<MetricsSnapshot> =
            (0..7).map(|i| arbitrary_snapshot(0xabc + i)).collect();
        let j = timeline_to_json(&timeline);
        let text = j.to_pretty_string();
        let back = timeline_from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, timeline);
    }

    #[test]
    fn snapshot_version_mismatch_rejected() {
        let snap = MetricsSnapshot::default();
        let Json::Obj(mut fields) = snap.to_json() else {
            panic!("snapshot must serialize to an object");
        };
        fields[0].1 = Json::Int(99);
        assert!(MetricsSnapshot::from_json(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn sampler_collects_a_timeline() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("ticks");
        let sampler = TimelineSampler::start(Arc::clone(&reg), Duration::from_millis(5));
        for _ in 0..10 {
            c.incr();
            std::thread::sleep(Duration::from_millis(5));
        }
        let timeline = sampler.stop();
        // At least a few periodic samples plus the final one; counts
        // non-decreasing and the last sees every tick.
        assert!(timeline.len() >= 3, "only {} samples", timeline.len());
        let mut last = 0u64;
        for s in &timeline {
            let v = s.counter("ticks").unwrap();
            assert!(v >= last);
            last = v;
        }
        assert_eq!(timeline.last().unwrap().counter("ticks"), Some(10));
    }
}
