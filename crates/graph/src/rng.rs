//! Minimal deterministic PRNG for the generators and tests.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so instead of depending on the `rand` crate the generators use
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14) — a tiny, well-studied
//! 64-bit mixer that passes BigCrush when used as a stream. Statistical
//! perfection is not the bar here: the generators only need seeded,
//! platform-independent, reproducible streams, and every test that pins a
//! seed relies on this stream never changing. **Do not alter the mixing
//! constants or the derivation of any `gen_*` method.**

/// A SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Modulo bias is below 2⁻⁴⁰ for every n the generators use
        // (n ≪ 2²⁴); accepted for simplicity.
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw from a `usize` range (`lo..hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_index(range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pinned() {
        // Reference values for seed 0 from the published SplitMix64
        // algorithm; if these change, every seeded test in the workspace
        // silently tests different graphs.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_tracks_probability() {
        let mut r = SplitMix64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} of 10000 at p=0.3");
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(10..17);
            assert!((10..17).contains(&x));
        }
        assert_eq!(r.gen_range(4..5), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SplitMix64::seed_from_u64(0).gen_range(3..3);
    }
}
