//! Synthetic graph generators.
//!
//! The paper evaluates on four SNAP/WebGraph real-world graphs (Table 1)
//! and four ROLL-generated scale-free graphs of 1 billion edges with
//! average degrees 40/80/120/160 (Table 2). Downloading multi-gigabyte
//! datasets is out of scope for this reproduction, so we rebuild the same
//! *families* at reduced scale:
//!
//! * [`roll`] — a ROLL-style preferential-attachment (Barabási–Albert)
//!   generator: ROLL \[Hadian et al., SIGMOD'16\] is an efficient BA
//!   sampler; we reproduce the model (and its degree skew), not the
//!   sampling-speed tricks.
//! * [`rmat`] — Kronecker/R-MAT graphs for heavy-tailed web/social
//!   stand-ins (webbase- and twitter-like skew).
//! * [`erdos_renyi`] — uniform random graphs.
//! * [`planted_partition`] — a stochastic block model with ground-truth
//!   communities; used by the examples and the correctness tests because
//!   SCAN-family algorithms should recover the planted blocks.
//! * structured graphs ([`complete`], [`star`], [`path`], [`cycle`],
//!   [`grid`], [`clique_chain`]) for unit tests and edge cases.
//!
//! All generators are deterministic given a seed.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::SplitMix64;

/// ROLL-style scale-free generator (Barabási–Albert preferential
/// attachment) targeting an *average degree* like the paper's
/// `ROLL-d40 … ROLL-d160` graphs.
///
/// Each new vertex attaches `m = avg_degree / 2` edges to existing
/// vertices chosen proportionally to their current degree (implemented
/// with the classic repeated-endpoints array, which makes generation
/// O(|E|)). Duplicate picks are retried a bounded number of times and
/// then accepted as duplicates for the builder to dedup, so the achieved
/// |E| is within a fraction of a percent of `n * m`.
///
/// # Panics
/// Panics if `avg_degree < 2` or `n < avg_degree`.
pub fn roll(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    assert!(avg_degree >= 2, "avg_degree must be >= 2");
    assert!(n >= avg_degree, "need n >= avg_degree");
    let m = avg_degree / 2;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let mut builder = GraphBuilder::with_capacity(n * m);

    // Seed clique over the first m + 1 vertices so early picks have mass.
    for u in 0..=(m as VertexId) {
        for v in 0..u {
            builder.push_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut picked: Vec<VertexId> = Vec::with_capacity(m);
    for u in (m + 1)..n {
        let u = u as VertexId;
        picked.clear();
        for _ in 0..m {
            // Preferential attachment: uniform pick from the endpoints
            // array is degree-proportional. Retry self loops and targets
            // already picked for this vertex (bounded, so generation stays
            // O(|E|) even for dense small graphs; any residual duplicates
            // are deduped by the builder).
            let mut v = endpoints[rng.gen_index(endpoints.len())];
            for _ in 0..32 {
                if v != u && !picked.contains(&v) {
                    break;
                }
                v = endpoints[rng.gen_index(endpoints.len())];
            }
            if v == u || picked.contains(&v) {
                continue;
            }
            picked.push(v);
            builder.push_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    builder.ensure_vertices(n).build()
}

/// R-MAT generator with quadrant probabilities `(a, b, c)` (`d = 1-a-b-c`).
///
/// `scale` gives `n = 2^scale` vertices; `edge_factor` the target average
/// degree (so `|E| ≈ n * edge_factor / 2`). The default social-network
/// parameterisation is `a = 0.57, b = 0.19, c = 0.19`; larger `a` skews
/// harder (webbase-like).
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let num_edges = n * edge_factor / 2;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen_f64();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        builder.push_edge(u as VertexId, v as VertexId);
    }
    builder.ensure_vertices(n).build()
}

/// R-MAT with the standard Graph500 social parameterisation.
pub fn rmat_social(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// Erdős–Rényi G(n, m): `m` uniformly random edges among `n` vertices.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(m);
    let mut added = 0usize;
    let mut attempts = 0usize;
    // Bounded retry keeps this terminating even for near-complete requests.
    while added < m && attempts < m * 4 + 64 {
        attempts += 1;
        let u = rng.gen_index(n) as VertexId;
        let v = rng.gen_index(n) as VertexId;
        if u != v {
            builder.push_edge(u, v);
            added += 1;
        }
    }
    builder.ensure_vertices(n).build()
}

/// Planted-partition stochastic block model: `blocks` communities of
/// `block_size` vertices; each intra-block pair is an edge with
/// probability `p_in`, each inter-block pair with probability `p_out`.
///
/// With `p_in >> p_out`, SCAN-family algorithms at moderate ε recover the
/// blocks exactly — the tests rely on this.
pub fn planted_partition(
    blocks: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> CsrGraph {
    let n = blocks * block_size;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / block_size == v / block_size;
            let p = if same { p_in } else { p_out };
            if rng.gen_bool(p) {
                builder.push_edge(u as VertexId, v as VertexId);
            }
        }
    }
    builder.ensure_vertices(n).build()
}

/// Complete graph K_n.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n {
        for v in (u + 1)..n {
            b.push_edge(u as VertexId, v as VertexId);
        }
    }
    b.ensure_vertices(n).build()
}

/// Star: vertex 0 connected to vertices `1..n`.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for v in 1..n {
        b.push_edge(0, v as VertexId);
    }
    b.ensure_vertices(n).build()
}

/// Path 0 - 1 - … - (n-1).
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for v in 1..n {
        b.push_edge(v as VertexId - 1, v as VertexId);
    }
    b.ensure_vertices(n).build()
}

/// Cycle over `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new();
    for v in 1..n {
        b.push_edge(v as VertexId - 1, v as VertexId);
    }
    b.push_edge(n as VertexId - 1, 0);
    b.build()
}

/// 4-connected grid of `w × h` vertices.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.push_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.push_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.ensure_vertices(w * h).build()
}

/// `num_cliques` cliques of size `k`, consecutive cliques joined by a
/// single bridge edge — the canonical SCAN motivating topology: clique
/// members are cores, bridges are hubs.
pub fn clique_chain(k: usize, num_cliques: usize) -> CsrGraph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    for c in 0..num_cliques {
        let base = (c * k) as VertexId;
        for i in 0..k {
            for j in (i + 1)..k {
                b.push_edge(base + i as VertexId, base + j as VertexId);
            }
        }
        if c + 1 < num_cliques {
            // Bridge from the last vertex of this clique to the first of
            // the next.
            b.push_edge(base + k as VertexId - 1, base + k as VertexId);
        }
    }
    b.ensure_vertices(k * num_cliques).build()
}

/// A 14-vertex golden example in the style of the original SCAN paper's
/// motivating network (Xu et al., KDD'07, Figure 1): two communities
/// joined by a bridge vertex, plus a pendant vertex. With ε = 0.7 and
/// µ = 2 it has exactly two clusters — the 6-cliques {0..5} and {7..12} —
/// vertex 6 is a **hub** (its two neighbors, 5 and 7, lie in different
/// clusters but neither is ε-similar to it) and vertex 13 is an
/// **outlier** (its only neighbor 12 is in one cluster and not similar).
/// Used as a hand-verified golden test throughout `ppscan-core`:
/// e.g. σ(5,6) = 2/√(7·3) ≈ 0.44 < 0.7 and σ(12,13) = 2/√(7·2) ≈ 0.53.
pub fn scan_paper_example() -> CsrGraph {
    let mut b = GraphBuilder::new();
    // Community A: 6-clique on {0..5}.
    for i in 0..6u32 {
        for j in (i + 1)..6 {
            b.push_edge(i, j);
        }
    }
    // Community B: 6-clique on {7..12}.
    for i in 7..13u32 {
        for j in (i + 1)..13 {
            b.push_edge(i, j);
        }
    }
    // Bridge (hub) 6 and pendant (outlier) 13.
    b.push_edge(5, 6);
    b.push_edge(6, 7);
    b.push_edge(12, 13);
    b.ensure_vertices(14).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_hits_target_size_and_degree() {
        let g = roll(2000, 20, 42);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 2000);
        let avg = g.avg_degree();
        assert!((avg - 20.0).abs() < 2.0, "avg degree {avg} too far from 20");
        // Scale-free: max degree far above average.
        assert!(g.max_degree() > 3 * avg as usize);
    }

    #[test]
    fn roll_is_deterministic() {
        assert_eq!(roll(500, 8, 7), roll(500, 8, 7));
        assert_ne!(roll(500, 8, 7), roll(500, 8, 8));
    }

    #[test]
    #[should_panic(expected = "avg_degree")]
    fn roll_rejects_tiny_degree() {
        roll(100, 1, 0);
    }

    #[test]
    fn rmat_shape() {
        let g = rmat_social(10, 16, 1);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 1024 * 4, "dedup removed too many edges");
        assert!(g.max_degree() > 8 * g.avg_degree() as usize);
    }

    #[test]
    fn erdos_renyi_shape() {
        let g = erdos_renyi(1000, 5000, 3);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 4500); // few duplicates at this density
    }

    #[test]
    fn planted_partition_blocks_denser_inside() {
        let g = planted_partition(4, 25, 0.6, 0.01, 9);
        g.validate().unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.undirected_edges() {
            if u / 25 == v / 25 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 10 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn structured_generators() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(grid(3, 3).num_edges(), 12);
        let cc = clique_chain(4, 3);
        assert_eq!(cc.num_vertices(), 12);
        assert_eq!(cc.num_edges(), 3 * 6 + 2);
        for g in [complete(5), star(5), path(5), cycle(5), grid(3, 3), cc] {
            g.validate().unwrap();
        }
    }

    #[test]
    fn scan_example_valid() {
        let g = scan_paper_example();
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.num_edges(), 2 * 15 + 3);
    }
}
