//! Batched edge updates over an immutable [`CsrGraph`].
//!
//! CSR is the right layout for the similarity kernels but the wrong one
//! for mutation: inserting one edge shifts every later offset. Instead
//! of mutating in place, an update batch is staged as a [`GraphDelta`]
//! and *spliced* into a fresh CSR ([`GraphDelta::apply_to`]): untouched
//! neighbor lists are block-copied, touched lists are merged with the
//! staged insertions/deletions. The splice is `O(n + m)` with a small
//! constant (mostly `memcpy`), which is what makes incremental index
//! maintenance (`ppscan-gsindex`) pay off — the expensive part of a
//! rebuild is the similarity recomputation, not the copy.
//!
//! Semantics (mirroring [`GraphBuilder`](crate::GraphBuilder)'s
//! normalization):
//!
//! * edges are undirected; `(u, v)` is normalized to `(min, max)`,
//! * self loops are rejected when staged ([`DeltaError::SelfLoop`]),
//! * vertex ids must name existing vertices — the vertex set is fixed
//!   ([`DeltaError::OutOfRange`]),
//! * at most one staged op per undirected pair
//!   ([`DeltaError::Duplicate`]),
//! * inserting an edge that already exists and deleting one that does
//!   not are **no-ops at apply time** (idempotent ingestion), tracked
//!   separately from the effective edits in [`AppliedDelta`].

use crate::csr::{CsrGraph, VertexId};
use std::collections::HashSet;
use std::sync::Arc;

/// Why a staged update batch was rejected. Every constructor returns
/// `Err` rather than panicking: deltas arrive from untrusted clients
/// (the `ppscan-serve` REPL), so rejection must be a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// `(u, u)` edges are not representable (CSR invariant: no self
    /// loops).
    SelfLoop {
        /// The offending vertex.
        u: VertexId,
    },
    /// An op named a vertex id outside `0..num_vertices` — the vertex
    /// set is fixed across updates.
    OutOfRange {
        /// The offending vertex id.
        u: VertexId,
        /// The graph's vertex count at validation time.
        num_vertices: usize,
    },
    /// Two staged ops name the same undirected pair; the batch order
    /// would silently decide the outcome, so it is rejected instead.
    Duplicate {
        /// Smaller endpoint of the duplicated pair.
        u: VertexId,
        /// Larger endpoint of the duplicated pair.
        v: VertexId,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaError::SelfLoop { u } => write!(f, "self loop ({u}, {u}) rejected"),
            DeltaError::OutOfRange { u, num_vertices } => {
                write!(
                    f,
                    "vertex {u} out of range (graph has {num_vertices} vertices)"
                )
            }
            DeltaError::Duplicate { u, v } => {
                write!(f, "duplicate op on edge ({u}, {v}) in one batch")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch of staged edge insertions and deletions.
///
/// Stage with [`insert`](GraphDelta::insert) / [`delete`](GraphDelta::delete),
/// then splice with [`apply_to`](GraphDelta::apply_to).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Normalized `(u < v)` pairs to insert.
    inserts: Vec<(VertexId, VertexId)>,
    /// Normalized `(u < v)` pairs to delete.
    deletes: Vec<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages an edge insertion. Rejects self loops; out-of-range ids
    /// and duplicate pairs are caught by [`validate`](Self::validate)
    /// (and therefore by [`apply_to`](Self::apply_to)).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.inserts.push(Self::normalize(u, v)?);
        Ok(())
    }

    /// Stages an edge deletion (same rules as [`insert`](Self::insert)).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.deletes.push(Self::normalize(u, v)?);
        Ok(())
    }

    fn normalize(u: VertexId, v: VertexId) -> Result<(VertexId, VertexId), DeltaError> {
        if u == v {
            return Err(DeltaError::SelfLoop { u });
        }
        Ok((u.min(v), u.max(v)))
    }

    /// Staged insertions, normalized `(u < v)`, in staging order.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// Staged deletions, normalized `(u < v)`, in staging order.
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Total staged ops.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Checks the batch against a graph: every id in range, no pair
    /// named twice.
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), DeltaError> {
        let n = graph.num_vertices();
        let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(self.len());
        for &(u, v) in self.inserts.iter().chain(self.deletes.iter()) {
            if u as usize >= n || v as usize >= n {
                let bad = if u as usize >= n { u } else { v };
                return Err(DeltaError::OutOfRange {
                    u: bad,
                    num_vertices: n,
                });
            }
            if !seen.insert((u, v)) {
                return Err(DeltaError::Duplicate { u, v });
            }
        }
        Ok(())
    }

    /// Splices the batch into a fresh CSR. Insertions of present edges
    /// and deletions of absent edges are dropped (no-ops); the edits
    /// that actually changed the graph are reported in the returned
    /// [`AppliedDelta`].
    pub fn apply_to(&self, graph: &CsrGraph) -> Result<AppliedDelta, DeltaError> {
        self.validate(graph)?;
        let n = graph.num_vertices();

        let inserted: Vec<(VertexId, VertexId)> = self
            .inserts
            .iter()
            .copied()
            .filter(|&(u, v)| !graph.has_edge(u, v))
            .collect();
        let deleted: Vec<(VertexId, VertexId)> = self
            .deletes
            .iter()
            .copied()
            .filter(|&(u, v)| graph.has_edge(u, v))
            .collect();

        // Directed views of the effective edits, sorted by source, so
        // the splice walks them with two cursors.
        let mut add_dir: Vec<(VertexId, VertexId)> = Vec::with_capacity(inserted.len() * 2);
        for &(u, v) in &inserted {
            add_dir.push((u, v));
            add_dir.push((v, u));
        }
        add_dir.sort_unstable();
        let mut del_dir: Vec<(VertexId, VertexId)> = Vec::with_capacity(deleted.len() * 2);
        for &(u, v) in &deleted {
            del_dir.push((u, v));
            del_dir.push((v, u));
        }
        del_dir.sort_unstable();

        let new_m2 = graph.num_directed_edges() + add_dir.len() - del_dir.len();
        let mut offsets = vec![0usize; n + 1];
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(new_m2);
        let (mut ai, mut di) = (0usize, 0usize);
        for u in 0..n as VertexId {
            let old = graph.neighbors(u);
            let add_end = {
                let mut e = ai;
                while e < add_dir.len() && add_dir[e].0 == u {
                    e += 1;
                }
                e
            };
            let del_end = {
                let mut e = di;
                while e < del_dir.len() && del_dir[e].0 == u {
                    e += 1;
                }
                e
            };
            if ai == add_end && di == del_end {
                // Untouched vertex: block copy.
                neighbors.extend_from_slice(old);
            } else {
                // Merge `old \ dels ∪ adds`; all three inputs are
                // strictly increasing, and adds∩old = ∅, dels ⊆ old by
                // the effective-edit filter above.
                let adds = &add_dir[ai..add_end];
                let dels = &del_dir[di..del_end];
                let (mut oi, mut xi, mut yi) = (0usize, 0usize, 0usize);
                while oi < old.len() || xi < adds.len() {
                    let take_add = xi < adds.len() && (oi >= old.len() || adds[xi].1 < old[oi]);
                    if take_add {
                        neighbors.push(adds[xi].1);
                        xi += 1;
                    } else {
                        let w = old[oi];
                        oi += 1;
                        if yi < dels.len() && dels[yi].1 == w {
                            yi += 1;
                            continue;
                        }
                        neighbors.push(w);
                    }
                }
            }
            ai = add_end;
            di = del_end;
            offsets[u as usize + 1] = neighbors.len();
        }
        debug_assert_eq!(neighbors.len(), new_m2);

        // Splice the reverse-edge index from the base graph's instead of
        // recounting all m slots: only slots incident to an edited
        // vertex need a fresh lookup, everything else is the old entry
        // shifted by its destination's offset delta.
        let mut in_t = vec![false; n];
        for &(u, v) in inserted.iter().chain(deleted.iter()) {
            in_t[u as usize] = true;
            in_t[v as usize] = true;
        }
        let graph = match graph.splice_rev(&offsets, &neighbors, &in_t) {
            Some(rev) => CsrGraph::from_spliced_parts_unchecked(offsets, neighbors, rev),
            None => CsrGraph::from_sorted_parts_unchecked(offsets, neighbors),
        };
        Ok(AppliedDelta {
            graph,
            inserted,
            deleted,
        })
    }
}

/// The outcome of splicing a [`GraphDelta`]: the new graph plus the
/// edits that actually changed it.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The spliced graph.
    pub graph: CsrGraph,
    /// Insertions that changed the graph (edge was absent), `(u < v)`.
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Deletions that changed the graph (edge was present), `(u < v)`.
    pub deleted: Vec<(VertexId, VertexId)>,
}

impl AppliedDelta {
    /// Number of undirected edges actually added or removed.
    pub fn applied_edges(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Endpoints of the effective edits — the vertices whose adjacency
    /// lists changed — sorted and deduplicated. Every σ value that an
    /// edit can change belongs to an edge incident to this set (see
    /// DESIGN.md §14).
    pub fn touched(&self) -> Vec<VertexId> {
        let mut t: Vec<VertexId> = self
            .inserted
            .iter()
            .chain(self.deleted.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// A mutable overlay over an immutable base [`CsrGraph`]: updates are
/// staged as a pending [`GraphDelta`] and the overlay answers
/// degree/adjacency queries through it; once the pending batch grows
/// past `compact_threshold` staged ops, [`stage`](OverlayGraph::stage)
/// compacts the overlay back to a fresh CSR (one splice instead of one
/// per op). This is the staging structure behind the serve REPL's
/// `insert`/`delete`/`flush` commands.
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    base: Arc<CsrGraph>,
    pending: GraphDelta,
    compact_threshold: usize,
}

impl OverlayGraph {
    /// Wraps `base` with an empty pending batch. `compact_threshold`
    /// bounds how many staged ops accumulate before the overlay is
    /// folded back into a CSR (0 means compact on every stage).
    pub fn new(base: Arc<CsrGraph>, compact_threshold: usize) -> Self {
        Self {
            base,
            pending: GraphDelta::new(),
            compact_threshold,
        }
    }

    /// The base graph the overlay reads through.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Ops staged but not yet compacted.
    pub fn pending(&self) -> &GraphDelta {
        &self.pending
    }

    /// Stages one insertion against the *effective* graph (base plus
    /// pending). Compacts first when the pending batch is full.
    pub fn stage_insert(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.stage(u, v, true)
    }

    /// Stages one deletion (see [`stage_insert`](Self::stage_insert)).
    pub fn stage_delete(&mut self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        self.stage(u, v, false)
    }

    fn stage(&mut self, u: VertexId, v: VertexId, ins: bool) -> Result<(), DeltaError> {
        let (u, v) = GraphDelta::normalize(u, v)?;
        let n = self.base.num_vertices();
        if u as usize >= n || v as usize >= n {
            let bad = if u as usize >= n { u } else { v };
            return Err(DeltaError::OutOfRange {
                u: bad,
                num_vertices: n,
            });
        }
        if self.pending.len() >= self.compact_threshold {
            self.compact();
        }
        let dup = self
            .pending
            .inserts
            .iter()
            .chain(self.pending.deletes.iter())
            .any(|&p| p == (u, v));
        if dup {
            return Err(DeltaError::Duplicate { u, v });
        }
        if ins {
            self.pending.inserts.push((u, v));
        } else {
            self.pending.deletes.push((u, v));
        }
        Ok(())
    }

    /// Whether the effective graph (base plus pending) has edge `(u, v)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let Ok((u, v)) = GraphDelta::normalize(u, v) else {
            return false;
        };
        if self.pending.inserts.contains(&(u, v)) {
            return true;
        }
        if self.pending.deletes.contains(&(u, v)) {
            return false;
        }
        self.base.has_edge(u, v)
    }

    /// Degree of `u` in the effective graph.
    pub fn degree(&self, u: VertexId) -> usize {
        let mut d = self.base.degree(u) as isize;
        for &(a, b) in &self.pending.inserts {
            d += (a == u || b == u) as isize;
        }
        for &(a, b) in &self.pending.deletes {
            d -= (a == u || b == u) as isize;
        }
        d.max(0) as usize
    }

    /// Vertex count (fixed across updates).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Splices pending ops into a fresh base CSR. Infallible: staged
    /// ops were validated at stage time.
    pub fn compact(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let applied = self
            .pending
            .apply_to(&self.base)
            .expect("staged ops were validated at stage time");
        self.base = Arc::new(applied.graph);
        self.pending = GraphDelta::new();
    }

    /// Drains the pending batch without compacting, for callers that
    /// want to apply it elsewhere (the serve `flush` path hands it to
    /// the server's update endpoint instead of splicing locally).
    pub fn take_pending(&mut self) -> GraphDelta {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;
    use crate::rng::SplitMix64;

    /// Reference: rebuild from scratch with the builder.
    fn rebuilt(g: &CsrGraph, delta: &GraphDelta) -> CsrGraph {
        let del: HashSet<(VertexId, VertexId)> = delta.deletes.iter().copied().collect();
        let mut b = GraphBuilder::new().ensure_vertices(g.num_vertices());
        for (u, v) in g.undirected_edges() {
            if !del.contains(&(u, v)) {
                b.push_edge(u, v);
            }
        }
        for &(u, v) in &delta.inserts {
            b.push_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn splice_matches_rebuild_on_random_batches() {
        let mut rng = SplitMix64::seed_from_u64(0x0de17a);
        for (gi, g) in [
            gen::roll(200, 8, 1),
            gen::erdos_renyi(120, 500, 2),
            gen::planted_partition(3, 20, 0.5, 0.05, 3),
            gen::path(30),
        ]
        .iter()
        .enumerate()
        {
            for batch in [1usize, 5, 40] {
                let mut delta = GraphDelta::new();
                let mut used = HashSet::new();
                let n = g.num_vertices();
                for _ in 0..batch {
                    let u = rng.gen_index(n) as VertexId;
                    let v = rng.gen_index(n) as VertexId;
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    if !used.insert(key) {
                        continue;
                    }
                    if rng.gen_bool(0.5) {
                        delta.insert(u, v).unwrap();
                    } else {
                        delta.delete(u, v).unwrap();
                    }
                }
                let applied = delta.apply_to(g).unwrap();
                applied.graph.validate().unwrap();
                let want = rebuilt(g, &delta);
                assert_eq!(
                    applied.graph.raw_offsets(),
                    want.raw_offsets(),
                    "graph {gi} batch {batch}"
                );
                assert_eq!(applied.graph.raw_neighbors(), want.raw_neighbors());
            }
        }
    }

    #[test]
    fn noop_edits_are_dropped_but_reported() {
        let g = crate::builder::from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let mut d = GraphDelta::new();
        d.insert(0, 1).unwrap(); // already present
        d.delete(0, 2).unwrap(); // absent
        d.insert(3, 0).unwrap(); // effective (normalized)
        let applied = d.apply_to(&g).unwrap();
        assert_eq!(applied.inserted, vec![(0, 3)]);
        assert!(applied.deleted.is_empty());
        assert_eq!(applied.applied_edges(), 1);
        assert_eq!(applied.touched(), vec![0, 3]);
        assert!(applied.graph.has_edge(0, 3));
        assert!(applied.graph.has_edge(0, 1));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = gen::clique_chain(4, 3);
        let applied = GraphDelta::new().apply_to(&g).unwrap();
        assert_eq!(applied.graph.raw_offsets(), g.raw_offsets());
        assert_eq!(applied.graph.raw_neighbors(), g.raw_neighbors());
        assert_eq!(applied.applied_edges(), 0);
        assert!(applied.touched().is_empty());
    }

    #[test]
    fn self_loop_rejected_at_stage_time() {
        let mut d = GraphDelta::new();
        assert_eq!(d.insert(3, 3), Err(DeltaError::SelfLoop { u: 3 }));
        assert_eq!(d.delete(0, 0), Err(DeltaError::SelfLoop { u: 0 }));
        assert!(d.is_empty());
    }

    #[test]
    fn out_of_range_and_duplicate_rejected_at_validate_time() {
        let g = gen::path(4); // vertices 0..4
        let mut d = GraphDelta::new();
        d.insert(0, 9).unwrap();
        assert_eq!(
            d.validate(&g),
            Err(DeltaError::OutOfRange {
                u: 9,
                num_vertices: 4
            })
        );

        let mut d = GraphDelta::new();
        d.insert(1, 2).unwrap();
        d.delete(2, 1).unwrap(); // same normalized pair
        assert_eq!(
            d.apply_to(&g).unwrap_err(),
            DeltaError::Duplicate { u: 1, v: 2 }
        );
    }

    #[test]
    fn delete_everything_leaves_empty_graph() {
        let g = gen::complete(5);
        let mut d = GraphDelta::new();
        for (u, v) in g.undirected_edges() {
            d.delete(u, v).unwrap();
        }
        let applied = d.apply_to(&g).unwrap();
        assert_eq!(applied.graph.num_edges(), 0);
        assert_eq!(applied.graph.num_vertices(), 5);
        assert_eq!(applied.deleted.len(), 10);
    }

    #[test]
    fn overlay_answers_through_pending_and_compacts() {
        let base = Arc::new(crate::builder::from_edges(&[(0, 1), (1, 2), (2, 3)]));
        let mut ov = OverlayGraph::new(Arc::clone(&base), 2);
        assert!(ov.has_edge(0, 1));
        ov.stage_delete(0, 1).unwrap();
        ov.stage_insert(0, 3).unwrap();
        assert!(!ov.has_edge(0, 1));
        assert!(ov.has_edge(3, 0));
        assert_eq!(ov.degree(0), 1); // lost 1, gained 3
        assert_eq!(ov.degree(3), 2);
        // Base is untouched until compaction.
        assert!(base.has_edge(0, 1));

        // Third stage exceeds the threshold of 2 → compacts first.
        ov.stage_insert(1, 3).unwrap();
        assert_eq!(ov.pending().len(), 1);
        assert!(!ov.base().has_edge(0, 1));
        assert!(ov.base().has_edge(0, 3));

        ov.compact();
        assert!(ov.pending().is_empty());
        assert!(ov.base().has_edge(1, 3));
        ov.base().validate().unwrap();
    }

    #[test]
    fn overlay_rejects_bad_stages_without_panicking() {
        let base = Arc::new(gen::path(5));
        let mut ov = OverlayGraph::new(base, 64);
        assert!(matches!(
            ov.stage_insert(0, 99),
            Err(DeltaError::OutOfRange { u: 99, .. })
        ));
        assert!(matches!(
            ov.stage_delete(2, 2),
            Err(DeltaError::SelfLoop { u: 2 })
        ));
        ov.stage_insert(0, 2).unwrap();
        assert_eq!(
            ov.stage_delete(2, 0),
            Err(DeltaError::Duplicate { u: 0, v: 2 })
        );
        assert_eq!(ov.pending().len(), 1);
    }

    #[test]
    fn take_pending_hands_off_the_batch() {
        let base = Arc::new(gen::cycle(6));
        let mut ov = OverlayGraph::new(Arc::clone(&base), 64);
        ov.stage_insert(0, 3).unwrap();
        let d = ov.take_pending();
        assert_eq!(d.inserts(), &[(0, 3)]);
        assert!(ov.pending().is_empty());
        // Base unchanged — the batch belongs to the caller now.
        assert!(!ov.base().has_edge(0, 3));
    }
}
