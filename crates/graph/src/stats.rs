//! Degree statistics — the quantities reported in the paper's Tables 1
//! and 2 (|V|, |E|, average degree `d̄`, maximum degree `max d`) plus a
//! skewness measure and a log-binned degree histogram used to sanity-check
//! that the synthetic stand-in datasets match the shape of the paper's
//! real-world graphs.

use crate::csr::CsrGraph;

/// Summary statistics for a graph, in the layout of the paper's tables.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices |V|.
    pub num_vertices: usize,
    /// Number of undirected edges |E|.
    pub num_edges: usize,
    /// Average degree 2|E| / |V|.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Median degree.
    pub median_degree: usize,
    /// Ratio max/avg — a crude skew indicator (1 for regular graphs,
    /// 10²–10⁵ for the paper's web/social graphs).
    pub skew: f64,
}

impl GraphStats {
    /// Computes the statistics of `g` in O(|V| log |V|).
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut degrees: Vec<usize> = (0..n).map(|u| g.degree(u as u32)).collect();
        degrees.sort_unstable();
        let max_degree = degrees.last().copied().unwrap_or(0);
        let median_degree = if n == 0 { 0 } else { degrees[n / 2] };
        let avg_degree = g.avg_degree();
        Self {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree,
            max_degree,
            median_degree,
            skew: if avg_degree > 0.0 {
                max_degree as f64 / avg_degree
            } else {
                0.0
            },
        }
    }

    /// One row in the style of the paper's Table 1 / Table 2.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<14} {:>10} {:>12} {:>8.1} {:>9}",
            name, self.num_vertices, self.num_edges, self.avg_degree, self.max_degree
        )
    }

    /// The table header matching [`GraphStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>10} {:>12} {:>8} {:>9}",
            "Name", "|V|", "|E|", "d", "max d"
        )
    }
}

/// Log₂-binned degree histogram: `hist[k]` counts vertices with degree in
/// `[2^k, 2^(k+1))`; `hist[0]` additionally includes degree-0 and degree-1
/// vertices.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in g.vertices() {
        let d = g.degree(u);
        let bin = if d <= 1 {
            0
        } else {
            usize::BITS as usize - 1 - d.leading_zeros() as usize
        };
        if hist.len() <= bin {
            hist.resize(bin + 1, 0);
        }
        hist[bin] += 1;
    }
    hist
}

/// Total SCAN similarity-computation workload `2 Σ d[v]²` (Theorem 3.4),
/// the quantity pruning attacks. Useful for predicting experiment cost.
pub fn scan_workload(g: &CsrGraph) -> u128 {
    2 * g
        .vertices()
        .map(|u| (g.degree(u) as u128).pow(2))
        .sum::<u128>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_complete_graph() {
        let s = GraphStats::of(&gen::complete(6));
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 15);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.median_degree, 5);
        assert!((s.avg_degree - 5.0).abs() < 1e-12);
        assert!((s.skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_star_show_skew() {
        let s = GraphStats::of(&gen::star(101));
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.median_degree, 1);
        assert!(s.skew > 40.0);
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::of(&CsrGraph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn histogram_bins() {
        // star(9): center degree 8 → bin 3; leaves degree 1 → bin 0.
        let h = degree_histogram(&gen::star(9));
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn workload_matches_theorem() {
        // Triangle: each degree 2, workload = 2 * 3 * 4 = 24.
        assert_eq!(scan_workload(&gen::complete(3)), 24);
    }

    #[test]
    fn table_row_formats() {
        let s = GraphStats::of(&gen::complete(3));
        let row = s.table_row("tri");
        assert!(row.contains("tri"));
        assert!(GraphStats::table_header().contains("|V|"));
    }
}
