//! Graph I/O: SNAP-style edge-list text and a compact binary CSR format.
//!
//! The paper loads SNAP and WebGraph datasets; this module provides the
//! equivalent ingestion path so that users with the real datasets
//! (orkut, twitter, …) can run every harness binary on them unchanged.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a SNAP-style edge list: one `u v` pair per line, `#` or `%`
/// comment lines ignored, arbitrary whitespace separators. Self loops and
/// duplicate edges are normalized away by the builder.
pub fn read_edge_list<R: BufRead>(reader: R) -> io::Result<CsrGraph> {
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<VertexId> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<VertexId>()
                .map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        builder.push_edge(u, v);
    }
    Ok(builder.build())
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge on line {}", lineno + 1),
    )
}

/// Reads an edge-list file from disk (see [`read_edge_list`]).
pub fn read_edge_list_file(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes the graph as an edge list, each undirected edge once.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# undirected graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.undirected_edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

const BINARY_MAGIC: &[u8; 8] = b"PPSCANG1";

/// Writes the compact binary CSR format:
/// magic, n (u64), offsets as u64 deltas… actually plain u64 offsets,
/// then neighbors as u32.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut w: W) -> io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    let n = graph.num_vertices() as u64;
    w.write_all(&n.to_le_bytes())?;
    for &off in graph.raw_offsets() {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &v in graph.raw_neighbors() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads the binary CSR format written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a ppscan binary graph (bad magic)",
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8) as usize);
    }
    let m = *offsets
        .last()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty offsets array"))?;
    let mut neighbors = vec![0 as VertexId; m];
    let mut buf4 = [0u8; 4];
    for slot in neighbors.iter_mut() {
        r.read_exact(&mut buf4)?;
        *slot = u32::from_le_bytes(buf4);
    }
    let g = CsrGraph::from_sorted_parts_unchecked(offsets, neighbors);
    g.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(g)
}

/// Writes the binary CSR format to a file.
pub fn write_binary_file(graph: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_binary(graph, BufWriter::new(File::create(path)?))
}

/// Reads the binary CSR format from a file.
pub fn read_binary_file(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    read_binary(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::scan_paper_example();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_tolerates_comments_and_blank_lines() {
        let text = "# comment\n\n% another\n0 1\n1\t2\n  2   0  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::roll(300, 8, 5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = gen::complete(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ppscan_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = gen::clique_chain(5, 4);
        write_binary_file(&g, &path).unwrap();
        assert_eq!(read_binary_file(&path).unwrap(), g);
        std::fs::remove_file(&path).unwrap();
    }
}
