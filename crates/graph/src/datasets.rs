//! Named dataset suite mirroring the paper's evaluation inputs.
//!
//! The paper uses four real-world graphs (Table 1) plus four 1-billion-edge
//! ROLL graphs (Table 2). This module provides deterministic synthetic
//! *stand-ins* at a configurable scale that preserve each dataset's shape
//! parameters — average degree and degree skew — which are what drive
//! every pruning and speedup effect in the paper (see DESIGN.md §3).
//!
//! Anyone with the real SNAP/WebGraph files can bypass this module via
//! [`crate::io::read_edge_list_file`] and feed the harness binaries real
//! data instead.

use crate::csr::CsrGraph;
use crate::gen;

/// The real-world datasets of the paper's Table 1 (plus livejournal,
/// which Figure 1 uses), as reduced-scale synthetic stand-ins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// livejournal stand-in: social graph, avg degree ≈ 17 (Figure 1).
    LiveJournalS,
    /// orkut stand-in: dense social graph, avg degree ≈ 76.
    OrkutS,
    /// webbase stand-in: web crawl, avg degree ≈ 9, extreme skew.
    WebbaseS,
    /// twitter stand-in: follower graph, avg degree ≈ 33, very high skew.
    TwitterS,
    /// friendster stand-in: avg degree ≈ 29, comparatively low skew.
    FriendsterS,
}

impl Dataset {
    /// All Table 1 datasets in paper order.
    pub const TABLE1: [Dataset; 4] = [
        Dataset::OrkutS,
        Dataset::WebbaseS,
        Dataset::TwitterS,
        Dataset::FriendsterS,
    ];

    /// All datasets, including livejournal (Figure 1 only).
    pub const ALL: [Dataset; 5] = [
        Dataset::LiveJournalS,
        Dataset::OrkutS,
        Dataset::WebbaseS,
        Dataset::TwitterS,
        Dataset::FriendsterS,
    ];

    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::LiveJournalS => "livejournal-s",
            Dataset::OrkutS => "orkut-s",
            Dataset::WebbaseS => "webbase-s",
            Dataset::TwitterS => "twitter-s",
            Dataset::FriendsterS => "friendster-s",
        }
    }

    /// Parses a dataset name as printed by [`Dataset::name`]; also accepts
    /// the paper's original names (`orkut`, `twitter`, …).
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.trim().to_ascii_lowercase().as_str() {
            "livejournal-s" | "livejournal" | "lj" => Some(Dataset::LiveJournalS),
            "orkut-s" | "orkut" => Some(Dataset::OrkutS),
            "webbase-s" | "webbase" => Some(Dataset::WebbaseS),
            "twitter-s" | "twitter" => Some(Dataset::TwitterS),
            "friendster-s" | "friendster" => Some(Dataset::FriendsterS),
            _ => None,
        }
    }

    /// The paper's Table 1 statistics for the original dataset:
    /// `(|V|, |E|, avg degree, max degree)`.
    pub fn paper_stats(self) -> (u64, u64, f64, u64) {
        match self {
            Dataset::LiveJournalS => (4_036_538, 34_681_189, 17.2, 14_815),
            Dataset::OrkutS => (3_072_627, 117_185_083, 76.3, 33_312),
            Dataset::WebbaseS => (118_142_143, 525_013_368, 8.9, 803_138),
            Dataset::TwitterS => (41_652_230, 684_500_375, 32.9, 1_405_985),
            Dataset::FriendsterS => (124_836_180, 1_806_067_135, 28.9, 5_214),
        }
    }

    /// Generates the stand-in at scale 1.0 (see [`Dataset::generate_scaled`]).
    pub fn generate(self) -> CsrGraph {
        self.generate_scaled(1.0)
    }

    /// Generates the stand-in with vertex counts multiplied by `scale`
    /// (`scale = 1.0` targets roughly 10⁵–10⁶ edges per dataset so the
    /// full figure suite completes in minutes on one core; pass a larger
    /// scale to stress bigger inputs).
    ///
    /// The family and parameters per dataset (DESIGN.md §3):
    /// * orkut-s — preferential attachment, avg degree 76 (dense, social)
    /// * webbase-s — R-MAT `a = 0.65`, avg degree 9 (sparse, extreme skew)
    /// * twitter-s — R-MAT `a = 0.60`, avg degree 33 (high skew)
    /// * friendster-s — preferential attachment, avg degree 29 (low skew)
    /// * livejournal-s — preferential attachment, avg degree 17
    pub fn generate_scaled(self, scale: f64) -> CsrGraph {
        assert!(scale > 0.0, "scale must be positive");
        let sv = |base: usize| ((base as f64 * scale) as usize).max(64);
        match self {
            Dataset::LiveJournalS => gen::roll(sv(40_000), 17, 0x11),
            Dataset::OrkutS => gen::roll(sv(16_000), 76, 0x22),
            Dataset::WebbaseS => {
                let s = rmat_scale(sv(120_000));
                gen::rmat(s, 9, 0.65, 0.16, 0.16, 0x33)
            }
            Dataset::TwitterS => {
                let s = rmat_scale(sv(40_000));
                gen::rmat(s, 33, 0.60, 0.18, 0.18, 0x44)
            }
            Dataset::FriendsterS => gen::roll(sv(60_000), 29, 0x55),
        }
    }
}

/// Smallest power-of-two exponent with `2^s >= n`.
fn rmat_scale(n: usize) -> u32 {
    (usize::BITS - n.next_power_of_two().leading_zeros() - 1).max(4)
}

/// The ROLL graph suite of Table 2: fixed |E| budget, average degree
/// `d ∈ {40, 80, 120, 160}`. `edge_budget` is the number of undirected
/// edges per graph (the paper uses 10⁹; our default harnesses use 10⁶).
pub fn roll_suite(edge_budget: usize) -> Vec<(String, CsrGraph)> {
    [40usize, 80, 120, 160]
        .iter()
        .map(|&d| {
            let n = (2 * edge_budget / d).max(d + 1);
            (format!("ROLL-d{d}"), gen::roll(n, d, 0xD0 + d as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
        assert_eq!(Dataset::parse("orkut"), Some(Dataset::OrkutS));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn stand_ins_match_paper_avg_degree() {
        // Shape fidelity: each stand-in's average degree within 35% of the
        // paper's (R-MAT dedup pulls the achieved degree down somewhat).
        for d in Dataset::ALL {
            let g = d.generate_scaled(0.12);
            let (.., paper_avg, _) = {
                let (v, e, a, m) = d.paper_stats();
                (v, e, a, m)
            };
            let got = g.avg_degree();
            assert!(
                (got - paper_avg).abs() / paper_avg < 0.35,
                "{}: avg degree {got:.1} vs paper {paper_avg}",
                d.name()
            );
        }
    }

    #[test]
    fn skew_ordering_preserved() {
        // Paper: webbase/twitter have extreme skew, friendster low skew.
        let tw = GraphStats::of(&Dataset::TwitterS.generate_scaled(0.12)).skew;
        let fr = GraphStats::of(&Dataset::FriendsterS.generate_scaled(0.12)).skew;
        assert!(
            tw > 2.0 * fr,
            "expected twitter-s skew ({tw:.1}) >> friendster-s skew ({fr:.1})"
        );
    }

    #[test]
    fn roll_suite_sizes() {
        let suite = roll_suite(50_000);
        assert_eq!(suite.len(), 4);
        for (name, g) in &suite {
            let e = g.num_edges();
            assert!(
                (e as f64 - 50_000.0).abs() / 50_000.0 < 0.15,
                "{name}: |E| = {e} too far from budget"
            );
        }
        // Higher target degree → fewer vertices at fixed |E|.
        assert!(suite[0].1.num_vertices() > suite[3].1.num_vertices());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        Dataset::OrkutS.generate_scaled(0.0);
    }
}
