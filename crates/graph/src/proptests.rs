//! Randomized property tests for the graph substrate: builder
//! normalization, CSR invariants, I/O round trips and analysis invariants
//! on arbitrary edge lists.
//!
//! Formerly `proptest`-based; now driven by seeded [`SplitMix64`] loops so
//! the workspace builds with no external dependencies. Every case prints
//! its seed on failure, so a red test is replayed by running the same
//! binary — the streams are platform-independent.

use crate::builder::from_edges;
use crate::csr::VertexId;
use crate::rng::SplitMix64;
use crate::{analysis, io};

/// Random edge list over `n` vertices with up to `max_edges` entries
/// (self loops and duplicates included on purpose — the builder must
/// normalize them away).
fn edge_list(rng: &mut SplitMix64, n: VertexId, max_edges: usize) -> Vec<(VertexId, VertexId)> {
    let len = rng.gen_index(max_edges + 1);
    (0..len)
        .map(|_| {
            (
                rng.gen_index(n as usize) as VertexId,
                rng.gen_index(n as usize) as VertexId,
            )
        })
        .collect()
}

/// Runs `case` over `cases` seeded random edge lists, reporting the seed
/// of the first failure.
fn for_random_edge_lists(
    cases: u64,
    n: VertexId,
    max_edges: usize,
    case: impl Fn(&[(VertexId, VertexId)]),
) {
    for seed in 0..cases {
        let mut rng = SplitMix64::seed_from_u64(0x9a7e_0000 ^ seed);
        let edges = edge_list(&mut rng, n, max_edges);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&edges)));
        if let Err(e) = result {
            eprintln!("failing case seed={seed} edges={edges:?}");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn builder_always_produces_valid_csr() {
    for_random_edge_lists(64, 40, 200, |edges| {
        let g = from_edges(edges);
        assert!(g.validate().is_ok());
    });
}

#[test]
fn builder_is_idempotent_under_duplication() {
    for_random_edge_lists(64, 30, 100, |edges| {
        let g1 = from_edges(edges);
        let doubled: Vec<_> = edges.iter().chain(edges.iter()).copied().collect();
        let g2 = from_edges(&doubled);
        // Duplicated input edges change nothing.
        assert_eq!(g1, g2);
    });
}

#[test]
fn builder_is_direction_insensitive() {
    for_random_edge_lists(64, 30, 100, |edges| {
        let g1 = from_edges(edges);
        let flipped: Vec<_> = edges.iter().map(|&(u, v)| (v, u)).collect();
        let g2 = from_edges(&flipped);
        assert_eq!(g1, g2);
    });
}

#[test]
fn edge_list_roundtrip() {
    for_random_edge_lists(64, 30, 150, |edges| {
        let g = from_edges(edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(io::read_edge_list(&buf[..]).unwrap(), g);
    });
}

#[test]
fn binary_roundtrip() {
    for_random_edge_lists(64, 30, 150, |edges| {
        let g = from_edges(edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        assert_eq!(io::read_binary(&buf[..]).unwrap(), g);
    });
}

/// The precomputed reverse-edge index agrees with the binary-search
/// lookup on every directed edge of the golden example and seeded
/// ROLL/RMAT graphs, and survives a binary I/O round trip (the index is
/// rebuilt on load, not serialized).
#[test]
fn rev_index_agrees_with_binary_search_everywhere() {
    let mut graphs = vec![crate::gen::scan_paper_example()];
    for seed in 0..4u64 {
        graphs.push(crate::gen::roll(300, 8, 0xA0 + seed));
        graphs.push(crate::gen::rmat_social(7, 6, 0xB0 + seed));
    }
    for g in graphs {
        for (u, v, eo) in g.directed_edges() {
            let expect = g
                .edge_offset(v, u)
                .expect("undirected graph must contain the reverse edge");
            assert_eq!(g.rev_offset(eo), expect, "edge ({u}, {v}) slot {eo}");
            assert_eq!(g.rev_offset_search(eo), expect);
        }
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let back = io::read_binary(&buf[..]).unwrap();
        assert_eq!(back, g);
        for (_, _, eo) in back.directed_edges() {
            assert_eq!(back.rev_offset(eo), g.rev_offset(eo));
        }
    }
}

#[test]
fn degree_sum_equals_directed_edges() {
    for_random_edge_lists(64, 40, 200, |edges| {
        let g = from_edges(edges);
        let sum: usize = g.vertices().map(|u| g.degree(u)).sum();
        assert_eq!(sum, g.num_directed_edges());
    });
}

#[test]
fn components_partition_vertices() {
    for_random_edge_lists(64, 30, 80, |edges| {
        let g = from_edges(edges);
        let (labels, count) = analysis::connected_components(&g);
        // Every vertex labeled by its component minimum.
        let mut distinct: Vec<_> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), count);
        // Adjacent vertices share a label.
        for (u, v) in g.undirected_edges() {
            assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Labels are component minima: label[v] <= v.
        for v in g.vertices() {
            assert!(labels[v as usize] <= v);
        }
    });
}

#[test]
fn triangle_count_matches_naive() {
    for_random_edge_lists(48, 20, 60, |edges| {
        let g = from_edges(edges);
        // Naive O(n³) triangle enumeration.
        let n = g.num_vertices() as VertexId;
        let mut naive = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                if !g.has_edge(a, b) {
                    continue;
                }
                for c in (b + 1)..n {
                    if g.has_edge(b, c) && g.has_edge(a, c) {
                        naive += 1;
                    }
                }
            }
        }
        assert_eq!(analysis::triangle_count(&g), naive);
    });
}
