//! Property-based tests for the graph substrate: builder normalization,
//! CSR invariants, I/O round trips and analysis invariants on arbitrary
//! edge lists.

use crate::builder::from_edges;
use crate::csr::VertexId;
use crate::{analysis, io};
use proptest::prelude::*;

fn edge_list(n: VertexId, max_edges: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_always_produces_valid_csr(edges in edge_list(40, 200)) {
        let g = from_edges(&edges);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn builder_is_idempotent_under_duplication(edges in edge_list(30, 100)) {
        let g1 = from_edges(&edges);
        let doubled: Vec<_> = edges.iter().chain(edges.iter()).copied().collect();
        let g2 = from_edges(&doubled);
        // Duplicated input edges change nothing.
        prop_assert_eq!(g1, g2);
    }

    #[test]
    fn builder_is_direction_insensitive(edges in edge_list(30, 100)) {
        let g1 = from_edges(&edges);
        let flipped: Vec<_> = edges.iter().map(|&(u, v)| (v, u)).collect();
        let g2 = from_edges(&flipped);
        prop_assert_eq!(g1, g2);
    }

    #[test]
    fn edge_list_roundtrip(edges in edge_list(30, 150)) {
        let g = from_edges(&edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_edge_list(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_roundtrip(edges in edge_list(30, 150)) {
        let g = from_edges(&edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn degree_sum_equals_directed_edges(edges in edge_list(40, 200)) {
        let g = from_edges(&edges);
        let sum: usize = g.vertices().map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, g.num_directed_edges());
    }

    #[test]
    fn components_partition_vertices(edges in edge_list(30, 80)) {
        let g = from_edges(&edges);
        let (labels, count) = analysis::connected_components(&g);
        // Every vertex labeled by its component minimum.
        let mut distinct: Vec<_> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), count);
        // Adjacent vertices share a label.
        for (u, v) in g.undirected_edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Labels are component minima: label[v] <= v.
        for v in g.vertices() {
            prop_assert!(labels[v as usize] <= v);
        }
    }

    #[test]
    fn triangle_count_matches_naive(edges in edge_list(20, 60)) {
        let g = from_edges(&edges);
        // Naive O(n³) triangle enumeration.
        let n = g.num_vertices() as VertexId;
        let mut naive = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                if !g.has_edge(a, b) { continue; }
                for c in (b + 1)..n {
                    if g.has_edge(b, c) && g.has_edge(a, c) {
                        naive += 1;
                    }
                }
            }
        }
        prop_assert_eq!(analysis::triangle_count(&g), naive);
    }
}
