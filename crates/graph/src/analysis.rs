//! Structural graph analysis used to characterize datasets: connected
//! components, global triangle count and clustering coefficient.
//!
//! SCAN-family behaviour is driven by triangle structure (a structural
//! similarity is large exactly when two adjacent vertices close many
//! triangles), so these quantities predict how much pruning (ε, µ) will
//! achieve on a dataset and appear in the dataset characterization of
//! EXPERIMENTS.md.

use crate::csr::{CsrGraph, VertexId};

/// Connected components by BFS. Returns `(labels, count)` where
/// `labels[v]` is the minimum vertex id in `v`'s component.
pub fn connected_components(g: &CsrGraph) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    let mut label = vec![VertexId::MAX; n];
    let mut count = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as VertexId {
        if label[start as usize] != VertexId::MAX {
            continue;
        }
        count += 1;
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == VertexId::MAX {
                    label[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    (label, count)
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(g: &CsrGraph) -> usize {
    let (labels, _) = connected_components(g);
    let mut counts = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Exact global triangle count, via per-edge neighborhood intersections
/// over the `u < v` orientation (each triangle is counted once per edge
/// and divided by 3). Uses the SIMD exact-count kernel.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut total = 0u64;
    for (u, v) in g.undirected_edges() {
        total += ppscan_intersect::count::count(g.neighbors(u), g.neighbors(v));
    }
    total / 3
}

/// Global clustering coefficient: `3·triangles / open wedges`.
/// Returns 0.0 when the graph has no wedge.
pub fn global_clustering_coefficient(g: &CsrGraph) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|u| {
            let d = g.degree(u) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn components_of_disconnected_graph() {
        // Two triangles far apart plus an isolated vertex.
        let g = crate::builder::GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .add_edge(5, 6)
            .add_edge(6, 7)
            .add_edge(5, 7)
            .ensure_vertices(9)
            .build();
        let (labels, count) = connected_components(&g);
        // Two triangles plus isolated vertices 3, 4 and 8.
        assert_eq!(count, 5);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[7], 5);
        assert_eq!(labels[8], 8);
    }

    #[test]
    fn components_counts_exactly() {
        let g = crate::builder::GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .ensure_vertices(5)
            .build();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1}, {2,3}, {4}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn largest_component() {
        let g = gen::clique_chain(4, 3); // connected by bridges
        assert_eq!(largest_component_size(&g), 12);
        assert_eq!(largest_component_size(&CsrGraph::empty(0)), 0);
    }

    #[test]
    fn triangles_of_known_graphs() {
        assert_eq!(triangle_count(&gen::complete(4)), 4);
        assert_eq!(triangle_count(&gen::complete(5)), 10);
        assert_eq!(triangle_count(&gen::cycle(5)), 0);
        assert_eq!(triangle_count(&gen::star(10)), 0);
        // clique_chain(3, 2): two triangles + bridge.
        assert_eq!(triangle_count(&gen::clique_chain(3, 2)), 2);
    }

    #[test]
    fn clustering_coefficient_extremes() {
        assert!((global_clustering_coefficient(&gen::complete(6)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering_coefficient(&gen::star(8)), 0.0);
        assert_eq!(global_clustering_coefficient(&CsrGraph::empty(3)), 0.0);
    }
}
