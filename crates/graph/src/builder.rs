//! Edge-list builder producing valid [`CsrGraph`]s.
//!
//! The builder accepts arbitrary (possibly duplicated, possibly self-loop,
//! possibly one-directional) edge pairs and normalizes them into the
//! canonical undirected CSR form the SCAN kernels require: both directions
//! present, neighbor lists sorted and deduplicated, self loops dropped.

use crate::csr::{CsrGraph, VertexId};

/// Accumulates undirected edges and builds a [`CsrGraph`].
///
/// ```
/// use ppscan_graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .add_edge(0, 1)
///     .add_edge(1, 0)   // duplicate direction: ignored
///     .add_edge(2, 2)   // self loop: dropped
///     .add_edge(1, 2)
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Default, Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            edges: Vec::with_capacity(n),
            min_vertices: 0,
        }
    }

    /// Ensures the built graph has at least `n` vertices even if the top
    /// ids never appear in an edge (isolated vertices).
    pub fn ensure_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds one undirected edge. Self loops are silently dropped;
    /// duplicates are deduplicated at build time.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// In-place variant of [`GraphBuilder::add_edge`] for loops.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Adds every edge from an iterator of pairs.
    pub fn extend_edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (u, v) in it {
            self.push_edge(u, v);
        }
        self
    }

    /// Number of (not yet deduplicated) edges accumulated so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Builds the CSR graph: counting sort by source, then per-vertex sort
    /// and dedup. O(|E| log d_max) time, no hashing.
    pub fn build(self) -> CsrGraph {
        let n = self
            .edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);

        // Degree count for both directions.
        let mut counts = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();

        // Scatter both directions.
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        // Sort + dedup each adjacency list, then recompact.
        let mut new_offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        for u in 0..n {
            let (beg, end) = (offsets[u], offsets[u + 1]);
            let adj = &mut neighbors[beg..end];
            adj.sort_unstable();
            let mut prev: Option<VertexId> = None;
            let mut w = write;
            for i in beg..end {
                let v = neighbors[i];
                if prev != Some(v) {
                    neighbors[w] = v;
                    w += 1;
                    prev = Some(v);
                }
            }
            write = w;
            new_offsets[u + 1] = write;
        }
        neighbors.truncate(write);
        // Dedup can leave an odd asymmetry only if input contained (u,v)
        // twice in one direction — normalization above stores min/max, so
        // both directions are always inserted in lockstep and symmetry holds.
        CsrGraph::from_sorted_parts_unchecked(new_offsets, neighbors)
    }
}

/// Convenience: builds a graph from a slice of edge pairs.
pub fn from_edges(edges: &[(VertexId, VertexId)]) -> CsrGraph {
    GraphBuilder::with_capacity(edges.len())
        .extend_edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_symmetrizes() {
        let g = from_edges(&[(0, 1), (1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        g.validate().unwrap();
    }

    #[test]
    fn drops_self_loops() {
        let g = from_edges(&[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_via_ensure() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .ensure_vertices(5)
            .build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        g.validate().unwrap();
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn build_is_order_insensitive() {
        let a = from_edges(&[(3, 1), (0, 2), (1, 0)]);
        let b = from_edges(&[(1, 0), (1, 3), (2, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn large_random_graph_is_valid() {
        // Deterministic pseudo-random edges; exercises the counting-sort
        // + dedup path with collisions.
        let mut edges = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 16) % 300) as VertexId;
            let v = ((x >> 40) % 300) as VertexId;
            edges.push((u, v));
        }
        let g = from_edges(&edges);
        g.validate().unwrap();
    }
}
