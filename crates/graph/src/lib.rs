//! # ppscan-graph
//!
//! Graph substrate for the ppSCAN reproduction: a compressed-sparse-row
//! (CSR) representation with sorted neighbor lists (Definition 2.11 of the
//! paper), an edge-list builder, text/binary I/O, synthetic graph
//! generators (including a ROLL-style scale-free generator used by the
//! paper's Table 2 / Figure 8 experiments), and degree statistics.
//!
//! All SCAN-family algorithms in this workspace consume [`CsrGraph`],
//! which guarantees the invariants the kernels rely on:
//!
//! * the graph is undirected: edge `(u, v)` is stored in both `u`'s and
//!   `v`'s neighbor list,
//! * neighbor lists are strictly increasing (sorted, no duplicates),
//! * there are no self loops.
//!
//! # Quick start
//!
//! ```
//! use ppscan_graph::{CsrGraph, GraphBuilder};
//!
//! let g = GraphBuilder::new()
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(0, 2)
//!     .build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_directed_edges(), 6);
//! assert_eq!(g.neighbors(0), &[1, 2]);
//! ```

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod gen;
pub mod io;
pub mod rng;
pub mod stats;

#[cfg(test)]
mod proptests;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, VertexId};
pub use delta::{AppliedDelta, DeltaError, GraphDelta, OverlayGraph};
pub use stats::GraphStats;
