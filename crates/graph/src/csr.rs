//! Compressed sparse row graph representation (paper Definition 2.11).
//!
//! The graph is stored as two flat arrays: `offsets` (length `n + 1`) and
//! `neighbors` (length `2|E|`), where the neighbors of vertex `u` occupy
//! `neighbors[offsets[u] .. offsets[u + 1]]` in strictly increasing order.
//! Every undirected edge `(u, v)` therefore appears twice — once in each
//! endpoint's list — exactly as pSCAN and ppSCAN require for the
//! similarity-value-reuse technique (the per-directed-slot `sim` array in
//! `ppscan-core` is indexed by positions in `neighbors`).

/// Vertex identifier. The paper's datasets top out at ~125M vertices, so a
/// 32-bit id suffices and halves the memory traffic of the SIMD kernels
/// (16 lanes per AVX-512 register).
pub type VertexId = u32;

/// An immutable undirected graph in CSR form with sorted neighbor lists.
///
/// Construct one with [`crate::GraphBuilder`], [`CsrGraph::from_sorted_parts`]
/// or the generators in [`crate::gen`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u] .. offsets[u + 1]` delimits `u`'s neighbor slice.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency (the paper's `dst` array).
    neighbors: Vec<VertexId>,
    /// Precomputed reverse-edge index: `rev[e(u, v)] = e(v, u)`. Built in
    /// one O(m) counting pass at construction time; empty when the index
    /// could not be built (corrupt parts awaiting `validate`, or more than
    /// `u32::MAX` directed slots), in which case [`Self::rev_offset`] falls
    /// back to binary search.
    rev: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts violate a CSR invariant: `offsets` must be
    /// non-empty and non-decreasing, start at 0 and end at
    /// `neighbors.len()`; each neighbor list must be strictly increasing,
    /// free of self loops, and every edge must have its reverse edge.
    pub fn from_sorted_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        let rev = build_rev(&offsets, &neighbors).unwrap_or_default();
        let g = Self {
            offsets,
            neighbors,
            rev,
        };
        g.validate().expect("invalid CSR parts");
        g
    }

    /// Builds a graph from CSR parts without checking the invariants.
    ///
    /// Intended for generators that construct valid CSR by construction;
    /// in debug builds the invariants are still asserted.
    pub fn from_sorted_parts_unchecked(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        let rev = build_rev(&offsets, &neighbors).unwrap_or_default();
        let g = Self {
            offsets,
            neighbors,
            rev,
        };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Builds a graph from pre-spliced CSR parts plus a reverse-edge
    /// index derived from [`Self::splice_rev`], skipping the O(m)
    /// [`build_rev`] pass. Debug builds re-derive the index and assert
    /// equality, so any splice bug fails the differential tests.
    pub(crate) fn from_spliced_parts_unchecked(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        rev: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(
            Some(&rev),
            build_rev(&offsets, &neighbors).as_ref(),
            "spliced rev index must match a from-scratch build"
        );
        let g = Self {
            offsets,
            neighbors,
            rev,
        };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Derives the reverse-edge index of a spliced CSR (`offsets`,
    /// `neighbors`) from this graph's own, given the set of vertices
    /// whose adjacency lists changed (`in_t`). For a slot `(u, v)` with
    /// both endpoints untouched, `v`'s list is byte-identical to the old
    /// one and only shifted: `rev'[e] = rev[e_old] + (off'[v] - off[v])`.
    /// Slots with a touched endpoint — `O(vol(T))` of them — fall back to
    /// binary search in `v`'s new list. Returns `None` (caller rebuilds
    /// from scratch) when this graph has no index to splice from, the new
    /// slot count exceeds `u32::MAX`, or the touched volume is so large
    /// that the per-slot searches would lose to one counting pass.
    pub(crate) fn splice_rev(
        &self,
        offsets: &[usize],
        neighbors: &[VertexId],
        in_t: &[bool],
    ) -> Option<Vec<u32>> {
        let m = neighbors.len();
        if m > u32::MAX as usize || (self.rev.is_empty() && !self.neighbors.is_empty()) {
            return None;
        }
        let n = offsets.len() - 1;
        // Touched volume in the *new* graph bounds the number of
        // binary-search slots ((u ∈ T) ∪ (v ∈ T) slots ≤ 2·vol(T)).
        let vol_t: usize = (0..n)
            .filter(|&v| in_t[v])
            .map(|v| offsets[v + 1] - offsets[v])
            .sum();
        if vol_t.saturating_mul(8) >= m {
            return None;
        }
        // Slot of (v, u) in the new CSR; every probed pair exists by the
        // undirected invariant the splice preserves.
        let pos_in = |v: usize, u: VertexId| -> u32 {
            let s = &neighbors[offsets[v]..offsets[v + 1]];
            let i = s.binary_search(&u).expect("symmetric spliced CSR");
            (offsets[v] + i) as u32
        };
        let mut rev = vec![0u32; m];
        for u in 0..n {
            let (ns, ne) = (offsets[u], offsets[u + 1]);
            if in_t[u] {
                // u's list changed: no old slots to map from.
                for e in ns..ne {
                    rev[e] = pos_in(neighbors[e] as usize, u as VertexId);
                }
                continue;
            }
            // u's list is unchanged, so new slot ns + i held old slot
            // old_ns + i with the same destination.
            let old_ns = self.offsets[u];
            for (i, e) in (ns..ne).enumerate() {
                let v = neighbors[e] as usize;
                rev[e] = if in_t[v] {
                    pos_in(v, u as VertexId)
                } else {
                    let shift = offsets[v] as i64 - self.offsets[v] as i64;
                    (self.rev[old_ns + i] as i64 + shift) as u32
                };
            }
        }
        Some(rev)
    }

    /// Checks every representation invariant; returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err(format!(
                "offsets must end at neighbors.len() = {}, got {}",
                self.neighbors.len(),
                self.offsets.last().unwrap()
            ));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        let n = self.num_vertices();
        for u in 0..n {
            let adj = self.neighbors(u as VertexId);
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbors of {u} not strictly increasing"));
            }
            for &v in adj {
                if v as usize >= n {
                    return Err(format!("edge ({u}, {v}) out of range (n = {n})"));
                }
                if v as usize == u {
                    return Err(format!("self loop at {u}"));
                }
                if self.edge_offset(v, u as VertexId).is_none() {
                    return Err(format!("missing reverse edge for ({u}, {v})"));
                }
            }
        }
        Ok(())
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            rev: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed CSR slots, i.e. `2|E|` for an undirected graph.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree `d[u]` — the number of neighbors of `u` (not counting `u`
    /// itself; the paper's closed neighborhood Γ(u) has size `d[u] + 1`).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The half-open CSR offset range of `u`'s neighbor slice
    /// (`off[u] .. off[u + 1]` in the paper's notation).
    #[inline]
    pub fn neighbor_range(&self, u: VertexId) -> std::ops::Range<usize> {
        self.offsets[u as usize]..self.offsets[u as usize + 1]
    }

    /// The sorted neighbor slice `N(u)`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.neighbors[self.neighbor_range(u)]
    }

    /// The raw concatenated neighbor array (the paper's `dst`).
    #[inline]
    pub fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// The raw offset array (the paper's `off`), length `n + 1`.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Destination vertex of the directed edge stored at CSR slot `eo`.
    #[inline]
    pub fn edge_dst(&self, eo: usize) -> VertexId {
        self.neighbors[eo]
    }

    /// The CSR slot of directed edge `(u, v)` — the paper's `e(u, v)` —
    /// found by binary search in `u`'s sorted neighbor list, or `None` if
    /// `(u, v)` is not an edge. This is exactly the "reverse edge offset
    /// computation" of pSCAN's similarity-value-reuse technique (§3.2.1).
    #[inline]
    pub fn edge_offset(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let range = self.neighbor_range(u);
        let adj = &self.neighbors[range.clone()];
        adj.binary_search(&v).ok().map(|i| range.start + i)
    }

    /// Whether `(u, v)` is an edge.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_offset(u, v).is_some()
    }

    /// The CSR slot of the reverse directed edge: for the slot `eo`
    /// holding edge `(u, v)`, returns the slot of `(v, u)`. O(1) via the
    /// precomputed index built at construction time — this replaces the
    /// per-edge binary search in pSCAN's similarity-value-reuse technique
    /// (§3.2.1). Falls back to [`Self::rev_offset_search`] when the index
    /// is absent (more than `u32::MAX` directed slots).
    #[inline]
    pub fn rev_offset(&self, eo: usize) -> usize {
        match self.rev.get(eo) {
            Some(&r) => r as usize,
            None => self.rev_offset_search(eo),
        }
    }

    /// Binary-search reference implementation of [`Self::rev_offset`]:
    /// recovers the source vertex of slot `eo` from `offsets`, then
    /// searches the destination's neighbor list. Kept public as the
    /// fallback path, for the ablation benches, and for the
    /// index-agreement property tests.
    ///
    /// # Panics
    ///
    /// Panics if `eo` is out of range or the reverse edge is missing
    /// (impossible on a validated graph).
    pub fn rev_offset_search(&self, eo: usize) -> usize {
        let v = self.neighbors[eo];
        let u = self.slot_src(eo);
        self.edge_offset(v, u)
            .expect("undirected graph must contain the reverse edge")
    }

    /// Source vertex of the directed edge stored at CSR slot `eo` — the
    /// inverse of [`Self::neighbor_range`], found by binary search over
    /// `offsets`.
    #[inline]
    pub fn slot_src(&self, eo: usize) -> VertexId {
        debug_assert!(eo < self.neighbors.len());
        (self.offsets.partition_point(|&o| o <= eo) - 1) as VertexId
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterates over every directed edge as `(u, v, slot)`.
    pub fn directed_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, usize)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbor_range(u)
                .map(move |eo| (u, self.neighbors[eo], eo))
        })
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.directed_edges()
            .filter(|&(u, v, _)| u < v)
            .map(|(u, v, _)| (u, v))
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|u| self.degree(u as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.rev.len() * std::mem::size_of::<u32>()
    }
}

/// Builds the reverse-edge index in one O(m) counting pass, or `None` if
/// the parts do not describe a symmetric sorted CSR (or exceed `u32`
/// slot range).
///
/// The pass walks sources `u` in ascending order keeping one write
/// cursor per destination list, initialized to `offsets[v]`. Because
/// every neighbor list is strictly increasing and symmetric, the slots
/// of `v`'s list are consumed exactly in ascending source order, so the
/// next unconsumed slot of `v`'s list is always `(v, u)` — no search
/// needed. Every access is bounds-checked so the builder is safe to run
/// on unvalidated input (e.g. a binary graph file before `validate`);
/// any inconsistency yields `None` and the caller falls back to binary
/// search until validation rejects the graph.
fn build_rev(offsets: &[usize], neighbors: &[VertexId]) -> Option<Vec<u32>> {
    let m = neighbors.len();
    if m == 0 {
        return Some(Vec::new());
    }
    if m > u32::MAX as usize || offsets.len() < 2 || *offsets.last()? != m {
        return None;
    }
    let n = offsets.len() - 1;
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    let mut rev = vec![0u32; m];
    for u in 0..n {
        let start = *offsets.get(u)?;
        let end = *offsets.get(u + 1)?;
        if start > end || end > m {
            return None;
        }
        for (eo, slot) in rev.iter_mut().enumerate().take(end).skip(start) {
            let v = *neighbors.get(eo)? as usize;
            if v >= n {
                return None;
            }
            let c = cursor[v];
            // The reverse slot must sit inside v's list and point back
            // at u; anything else means the parts are not symmetric
            // sorted CSR.
            if c >= *offsets.get(v + 1)? || *neighbors.get(c)? as usize != u {
                return None;
            }
            *slot = c as u32;
            cursor[v] = c + 1;
        }
    }
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .build()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn edge_offset_matches_definition() {
        let g = triangle();
        // e(u, v) ∈ [off[u], off[u+1]) and dst[e(u, v)] = v (Def 2.11).
        for (u, v, _) in g.directed_edges() {
            let eo = g.edge_offset(u, v).unwrap();
            assert!(g.neighbor_range(u).contains(&eo));
            assert_eq!(g.edge_dst(eo), v);
        }
        assert_eq!(g.edge_offset(0, 0), None);
    }

    #[test]
    fn undirected_edges_listed_once() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn validate_rejects_unsorted() {
        let g = CsrGraph {
            offsets: vec![0, 2, 3, 4],
            neighbors: vec![2, 1, 0, 0],
            rev: Vec::new(),
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_reverse_edge() {
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            neighbors: vec![1],
            rev: Vec::new(),
        };
        assert!(g.validate().unwrap_err().contains("reverse"));
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = CsrGraph {
            offsets: vec![0, 1],
            neighbors: vec![0],
            rev: Vec::new(),
        };
        assert!(g.validate().unwrap_err().contains("self loop"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let g = CsrGraph {
            offsets: vec![0, 1],
            neighbors: vec![7],
            rev: Vec::new(),
        };
        assert!(g.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    #[should_panic(expected = "invalid CSR parts")]
    fn from_sorted_parts_panics_on_bad_input() {
        CsrGraph::from_sorted_parts(vec![0, 1], vec![0]);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(triangle().heap_bytes() > 0);
    }

    #[test]
    fn rev_offset_matches_search_and_is_an_involution() {
        for g in [
            triangle(),
            CsrGraph::empty(0),
            CsrGraph::empty(5),
            crate::gen::star(12),
            crate::gen::clique_chain(5, 3),
        ] {
            for (u, v, eo) in g.directed_edges() {
                let r = g.rev_offset(eo);
                assert_eq!(r, g.rev_offset_search(eo), "({u}, {v}) slot {eo}");
                assert_eq!(g.edge_dst(r), u);
                assert_eq!(g.slot_src(eo), u);
                assert_eq!(g.rev_offset(r), eo, "rev must be an involution");
            }
        }
    }

    #[test]
    fn rev_offset_falls_back_without_index() {
        let mut g = triangle();
        g.rev = Vec::new();
        for (_, _, eo) in triangle().directed_edges() {
            assert_eq!(g.rev_offset(eo), triangle().rev_offset(eo));
        }
    }

    #[test]
    fn build_rev_rejects_asymmetric_parts() {
        // (0, 1) present without (1, 0): cursor check must fail.
        assert_eq!(build_rev(&[0, 1, 1], &[1]), None);
        // Unsorted list: slots consumed out of ascending-source order.
        assert_eq!(build_rev(&[0, 2, 3, 4], &[2, 1, 0, 0]), None);
        // Out-of-range destination.
        assert_eq!(build_rev(&[0, 1], &[7]), None);
    }
}
