//! Block-based all-pairs vectorized set intersection (extension).
//!
//! The paper's pivot kernel (Algorithm 6, [`crate::simd`]) was designed
//! for KNL's in-order cores, where any vectorization beats the weak
//! scalar pipeline. On modern out-of-order x86 the pivot kernel's
//! `popcnt → next-load-address` dependency chain serializes it, and dense
//! interleaved inputs (the common case between adjacent vertices of a
//! social graph) run *slower* than a well-predicted scalar merge.
//!
//! This module implements the intersection style SCAN-XP used on Xeon
//! Phi, adapted with the paper's early-termination bounds: compare one
//! vector block of each array **all-pairs** (rotate one block lane-wise
//! and compare for equality L times), count the matches with one popcnt,
//! and advance whichever block has the smaller maximum. There is no
//! data-dependent addressing — blocks advance by the full lane width —
//! so the loop runs at load/compare throughput on any density.
//!
//! Early termination happens at block granularity, which preserves the
//! Definition 3.9 guarantees:
//! * `cn` grows only when matches are counted → the `Sim` exit is exact;
//! * `du`/`dv` drop by `L − (matches inside the advanced block)` when a
//!   block retires, which keeps them true upper bounds of `|Γ(u) ∩ Γ(v)|`.
//!
//! Inputs must be strictly increasing (the CSR neighbor-array contract):
//! strictness guarantees each element matches at most one element of the
//! other array, so OR-ing the rotated equality masks and popcounting
//! counts matches exactly once.

use crate::counters;
use crate::pivot::{self, PivotState};
use crate::similarity::Similarity;

/// AVX2 block kernel (8-lane blocks).
pub mod avx2 {
    use super::*;

    /// Block-based vectorized `CompSim`; same contract as
    /// [`crate::merge::check_early`].
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        counters::record_invocation();
        if min_cn <= 2 {
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::avx2_available() {
                // SAFETY: feature checked; `inner` guards all loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX2 block kernel invoked without avx2");
        pivot::run_from(a, b, s, min_cn)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 8;
        // Lane rotation by one: vb[k] ← vb[(k + 1) % 8].
        let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
        // Matches already counted inside the *current* a-/b-block.
        let mut acc_a = 0u64;
        let mut acc_b = 0u64;
        while s.i + LANES <= a.len() && s.j + LANES <= b.len() {
            // SAFETY: both loads are guarded by the loop condition.
            let va = _mm256_loadu_si256(a.as_ptr().add(s.i) as *const _);
            let vb = _mm256_loadu_si256(b.as_ptr().add(s.j) as *const _);
            // All-pairs equality: rotate vb through all 8 alignments.
            let mut hits = _mm256_cmpeq_epi32(va, vb);
            let mut vb_rot = vb;
            for _ in 1..LANES {
                vb_rot = _mm256_permutevar8x32_epi32(vb_rot, rot1);
                hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vb_rot));
            }
            let m = (_mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32).count_ones() as u64;
            s.cn += m;
            if s.cn >= min_cn {
                return Similarity::Sim;
            }
            acc_a += m;
            acc_b += m;
            // SAFETY: block-tail indices are below the guarded bounds.
            let amax = *a.get_unchecked(s.i + LANES - 1);
            let bmax = *b.get_unchecked(s.j + LANES - 1);
            // Advance the block(s) with the smaller maximum. Strictly
            // increasing arrays make this safe: every element of the
            // retired block is ≤ its max ≤ the other block's max < the
            // other array's next block, so no match is skipped.
            if amax <= bmax {
                s.du -= LANES as u64 - acc_a;
                s.i += LANES;
                acc_a = 0;
                if s.du < min_cn {
                    return Similarity::NSim;
                }
            }
            if bmax <= amax {
                s.dv -= LANES as u64 - acc_b;
                s.j += LANES;
                acc_b = 0;
                if s.dv < min_cn {
                    return Similarity::NSim;
                }
            }
        }
        // Fewer than 8 elements remain on one side: the scalar pivot
        // tail resumes at (i, j). Every iteration retired at least one
        // block, so the final live block pair was never compared: cn
        // holds no match between elements at ≥ i and ≥ j, and the tail
        // cannot double-count. It will, however, skip live-block elements
        // whose partner already retired (the acc_a/acc_b matches) and
        // decrement du/dv for them as if unmatched — loosen the bounds by
        // exactly that amount so they stay valid upper bounds.
        s.du += acc_a;
        s.dv += acc_b;
        pivot::run_from(a, b, s, min_cn)
    }
}

/// AVX-512 block kernel (16-lane blocks).
pub mod avx512 {
    use super::*;

    /// Block-based vectorized `CompSim`; same contract as
    /// [`crate::merge::check_early`].
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        counters::record_invocation();
        if min_cn <= 2 {
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::avx512_available() {
                // SAFETY: feature checked; `inner` guards all loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX-512 block kernel invoked without avx512f");
        pivot::run_from(a, b, s, min_cn)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 16;
        let rot1 = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
        let mut acc_a = 0u64;
        let mut acc_b = 0u64;
        while s.i + LANES <= a.len() && s.j + LANES <= b.len() {
            // SAFETY: both loads are guarded by the loop condition.
            let va = _mm512_loadu_si512(a.as_ptr().add(s.i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(s.j) as *const _);
            let mut hits: u16 = _mm512_cmpeq_epi32_mask(va, vb);
            let mut vb_rot = vb;
            for _ in 1..LANES {
                vb_rot = _mm512_permutexvar_epi32(rot1, vb_rot);
                hits |= _mm512_cmpeq_epi32_mask(va, vb_rot);
            }
            let m = hits.count_ones() as u64;
            s.cn += m;
            if s.cn >= min_cn {
                return Similarity::Sim;
            }
            acc_a += m;
            acc_b += m;
            // SAFETY: block-tail indices are below the guarded bounds.
            let amax = *a.get_unchecked(s.i + LANES - 1);
            let bmax = *b.get_unchecked(s.j + LANES - 1);
            if amax <= bmax {
                s.du -= LANES as u64 - acc_a;
                s.i += LANES;
                acc_a = 0;
                if s.du < min_cn {
                    return Similarity::NSim;
                }
            }
            if bmax <= amax {
                s.dv -= LANES as u64 - acc_b;
                s.j += LANES;
                acc_b = 0;
                if s.dv < min_cn {
                    return Similarity::NSim;
                }
            }
        }
        // See the AVX2 kernel for why this adjustment is exact.
        s.du += acc_a;
        s.dv += acc_b;
        pivot::run_from(a, b, s, min_cn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    type CheckFn = fn(&[u32], &[u32], u64) -> Similarity;

    fn check_fns() -> Vec<(&'static str, CheckFn)> {
        let mut v: Vec<(&'static str, CheckFn)> = Vec::new();
        if crate::simd::avx2_available() {
            v.push(("block-avx2", avx2::check_early));
        }
        if crate::simd::avx512_available() {
            v.push(("block-avx512", avx512::check_early));
        }
        v
    }

    #[test]
    fn agrees_with_merge_on_size_grid() {
        for (name, f) in check_fns() {
            for &la in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
                for &lb in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
                    let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                    let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                    for min_cn in [0u64, 2, 3, 4, 8, 16, 40, 1000] {
                        assert_eq!(
                            f(&a, &b, min_cn),
                            merge::check_early(&a, &b, min_cn),
                            "{name} |a|={la} |b|={lb} min_cn={min_cn}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn identical_and_disjoint() {
        let a: Vec<u32> = (0..512).collect();
        let c: Vec<u32> = (1000..1512).collect();
        for (name, f) in check_fns() {
            assert_eq!(f(&a, &a, 514), Similarity::Sim, "{name}");
            assert_eq!(f(&a, &a, 515), Similarity::NSim, "{name}");
            assert_eq!(f(&a, &c, 3), Similarity::NSim, "{name}");
        }
    }
}
