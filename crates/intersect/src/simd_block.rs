//! Block-based all-pairs vectorized set intersection (extension).
//!
//! The paper's pivot kernel (Algorithm 6, [`crate::simd`]) was designed
//! for KNL's in-order cores, where any vectorization beats the weak
//! scalar pipeline. On modern out-of-order x86 the pivot kernel's
//! `popcnt → next-load-address` dependency chain serializes it, and dense
//! interleaved inputs (the common case between adjacent vertices of a
//! social graph) run *slower* than a well-predicted scalar merge.
//!
//! This module implements the intersection style SCAN-XP used on Xeon
//! Phi, adapted with the paper's early-termination bounds: compare one
//! vector block of each array **all-pairs** (rotate one block lane-wise
//! and compare for equality L times), count the matches with one popcnt,
//! and advance whichever block has the smaller maximum. There is no
//! data-dependent addressing — blocks advance by the full lane width —
//! so the loop runs at load/compare throughput on any density.
//!
//! Partial trailing blocks are processed by the same all-pairs loop via
//! masked/partial loads: dead lanes are filled with sentinels above the
//! `i32::MAX` vertex-id ceiling (a distinct sentinel per side, so dead
//! lanes can match neither a real id nor each other). This matters for
//! low-degree graphs — with 16-lane blocks and average degree ~40, a
//! scalar tail would otherwise handle up to 15 elements per side, more
//! than a third of the work.
//!
//! Early termination happens at block granularity, which preserves the
//! Definition 3.9 guarantees:
//! * `cn` grows only when matches are counted → the `Sim` exit is exact;
//! * `du`/`dv` drop by `l − (matches inside the advanced block)` when a
//!   block of `l` live elements retires, which keeps them true upper
//!   bounds of `|Γ(u) ∩ Γ(v)|`.
//!
//! Inputs must be strictly increasing (the CSR neighbor-array contract):
//! strictness guarantees each element matches at most one element of the
//! other array, so OR-ing the rotated equality masks and popcounting
//! counts matches exactly once.

use crate::counters;
use crate::pivot::PivotState;
use crate::similarity::Similarity;

/// AVX2 block kernel (8-lane blocks).
pub mod avx2 {
    use super::*;

    /// Block-based vectorized `CompSim`; same contract as
    /// [`crate::merge::check_early`].
    ///
    /// The invocation counter is charged together with the scanned count
    /// in one thread-local access at each exit (`inner` owns the exits
    /// of the vectorized path).
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        if min_cn <= 2 {
            counters::record_invocation();
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            counters::record_invocation();
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::avx2_available() {
                // SAFETY: feature checked; `inner` guards all loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX2 block kernel invoked without avx2");
        counters::record_invocation();
        crate::pivot::run_from(a, b, s, min_cn)
    }

    /// Row `r` of the maskload table: `8 - r` leading live lanes.
    #[cfg(target_arch = "x86_64")]
    static MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: contract — call only after
    // `is_x86_feature_detected!("avx2")` (checked by the enclosing
    // dispatch wrapper).
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 8;
        // Lane rotation by one: vb[k] ← vb[(k + 1) % 8].
        let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
        // Dead-lane sentinels above the i32::MAX id ceiling; the two
        // sides differ so dead lanes never match each other either.
        let fill_a = _mm256_set1_epi32(-1);
        let fill_b = _mm256_set1_epi32(-2);
        // Matches already counted inside the *current* a-/b-block.
        let mut acc_a = 0u64;
        let mut acc_b = 0u64;
        while s.i < a.len() && s.j < b.len() {
            let la = (a.len() - s.i).min(LANES);
            let lb = (b.len() - s.j).min(LANES);
            // SAFETY: maskload touches only the `la`/`lb` live lanes,
            // which the length subtraction keeps in bounds; the mask
            // table rows start at LANES - l ∈ [0, 8].
            let ma = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - la) as *const _);
            let mb = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - lb) as *const _);
            let va = _mm256_maskload_epi32(a.as_ptr().add(s.i) as *const i32, ma);
            let vb = _mm256_maskload_epi32(b.as_ptr().add(s.j) as *const i32, mb);
            // Masked-out lanes load as 0, which is a valid vertex id —
            // blend in the sentinels before comparing.
            let va = _mm256_blendv_epi8(fill_a, va, ma);
            let vb = _mm256_blendv_epi8(fill_b, vb, mb);
            // All-pairs equality: rotate vb through all 8 alignments.
            let mut hits = _mm256_cmpeq_epi32(va, vb);
            let mut vb_rot = vb;
            for _ in 1..LANES {
                vb_rot = _mm256_permutevar8x32_epi32(vb_rot, rot1);
                hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vb_rot));
            }
            let m = (_mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32).count_ones() as u64;
            s.cn += m;
            if s.cn >= min_cn {
                counters::record_invocation_scanned((s.i + s.j) as u64);
                return Similarity::Sim;
            }
            acc_a += m;
            acc_b += m;
            // SAFETY: block-tail indices are below the live lengths.
            let amax = *a.get_unchecked(s.i + la - 1);
            let bmax = *b.get_unchecked(s.j + lb - 1);
            // Advance the block(s) with the smaller maximum. Strictly
            // increasing arrays make this safe: every element of the
            // retired block is ≤ its max ≤ the other block's max < the
            // other array's next block, so no match is skipped.
            if amax <= bmax {
                s.du -= la as u64 - acc_a;
                s.i += la;
                acc_a = 0;
                if s.du < min_cn {
                    counters::record_invocation_scanned((s.i + s.j) as u64);
                    return Similarity::NSim;
                }
            }
            if bmax <= amax {
                s.dv -= lb as u64 - acc_b;
                s.j += lb;
                acc_b = 0;
                if s.dv < min_cn {
                    counters::record_invocation_scanned((s.i + s.j) as u64);
                    return Similarity::NSim;
                }
            }
        }
        // One side exhausted with cn < min_cn: cn can no longer grow.
        counters::record_invocation_scanned((s.i + s.j) as u64);
        Similarity::NSim
    }
}

/// AVX-512 block kernel (16-lane blocks).
pub mod avx512 {
    use super::*;

    /// Block-based vectorized `CompSim`; same contract as
    /// [`crate::merge::check_early`].
    ///
    /// The invocation counter is charged together with the scanned count
    /// in one thread-local access at each exit (`inner` owns the exits
    /// of the vectorized path).
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        if min_cn <= 2 {
            counters::record_invocation();
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            counters::record_invocation();
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if crate::simd::avx512_available() {
                // SAFETY: feature checked; `inner` guards all loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX-512 block kernel invoked without avx512f");
        counters::record_invocation();
        crate::pivot::run_from(a, b, s, min_cn)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    // SAFETY: contract — call only after
    // `is_x86_feature_detected!("avx512f")` (checked by the enclosing
    // dispatch wrapper).
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 16;
        let rot1 = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
        // Dead-lane sentinels above the i32::MAX id ceiling; the two
        // sides differ so dead lanes never match each other either.
        let fill_a = _mm512_set1_epi32(-1);
        let fill_b = _mm512_set1_epi32(-2);
        let mut acc_a = 0u64;
        let mut acc_b = 0u64;
        while s.i < a.len() && s.j < b.len() {
            let la = (a.len() - s.i).min(LANES);
            let lb = (b.len() - s.j).min(LANES);
            let ka: __mmask16 = 0xFFFF >> (LANES - la);
            let kb: __mmask16 = 0xFFFF >> (LANES - lb);
            // SAFETY: the masked loads fault-suppress dead lanes; live
            // lanes are in bounds by the length subtraction. Dead lanes
            // take the sentinel from the src operand.
            let va = _mm512_mask_loadu_epi32(fill_a, ka, a.as_ptr().add(s.i) as *const i32);
            let vb = _mm512_mask_loadu_epi32(fill_b, kb, b.as_ptr().add(s.j) as *const i32);
            let mut hits: u16 = _mm512_cmpeq_epi32_mask(va, vb);
            let mut vb_rot = vb;
            for _ in 1..LANES {
                vb_rot = _mm512_permutexvar_epi32(rot1, vb_rot);
                hits |= _mm512_cmpeq_epi32_mask(va, vb_rot);
            }
            let m = hits.count_ones() as u64;
            s.cn += m;
            if s.cn >= min_cn {
                counters::record_invocation_scanned((s.i + s.j) as u64);
                return Similarity::Sim;
            }
            acc_a += m;
            acc_b += m;
            // SAFETY: block-tail indices are below the live lengths.
            let amax = *a.get_unchecked(s.i + la - 1);
            let bmax = *b.get_unchecked(s.j + lb - 1);
            if amax <= bmax {
                s.du -= la as u64 - acc_a;
                s.i += la;
                acc_a = 0;
                if s.du < min_cn {
                    counters::record_invocation_scanned((s.i + s.j) as u64);
                    return Similarity::NSim;
                }
            }
            if bmax <= amax {
                s.dv -= lb as u64 - acc_b;
                s.j += lb;
                acc_b = 0;
                if s.dv < min_cn {
                    counters::record_invocation_scanned((s.i + s.j) as u64);
                    return Similarity::NSim;
                }
            }
        }
        // One side exhausted with cn < min_cn: cn can no longer grow.
        counters::record_invocation_scanned((s.i + s.j) as u64);
        Similarity::NSim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    type CheckFn = fn(&[u32], &[u32], u64) -> Similarity;

    fn check_fns() -> Vec<(&'static str, CheckFn)> {
        let mut v: Vec<(&'static str, CheckFn)> = Vec::new();
        if crate::simd::avx2_available() {
            v.push(("block-avx2", avx2::check_early));
        }
        if crate::simd::avx512_available() {
            v.push(("block-avx512", avx512::check_early));
        }
        v
    }

    #[test]
    fn agrees_with_merge_on_size_grid() {
        for (name, f) in check_fns() {
            for &la in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
                for &lb in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
                    let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                    let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                    for min_cn in [0u64, 2, 3, 4, 8, 16, 40, 1000] {
                        assert_eq!(
                            f(&a, &b, min_cn),
                            merge::check_early(&a, &b, min_cn),
                            "{name} |a|={la} |b|={lb} min_cn={min_cn}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn identical_and_disjoint() {
        let a: Vec<u32> = (0..512).collect();
        let c: Vec<u32> = (1000..1512).collect();
        for (name, f) in check_fns() {
            assert_eq!(f(&a, &a, 514), Similarity::Sim, "{name}");
            assert_eq!(f(&a, &a, 515), Similarity::NSim, "{name}");
            assert_eq!(f(&a, &c, 3), Similarity::NSim, "{name}");
        }
    }

    #[test]
    fn zero_id_does_not_match_dead_lanes() {
        // Vertex id 0 is valid; masked-out lanes must not collide with
        // it (the sentinels sit above i32::MAX).
        let a: Vec<u32> = vec![0, 5];
        let b: Vec<u32> = vec![1, 2, 3];
        for (name, f) in check_fns() {
            assert_eq!(
                f(&a, &b, 3),
                merge::check_early(&a, &b, 3),
                "{name} zero-id partial blocks"
            );
        }
    }
}
