//! Measured per-bucket kernel autotuning.
//!
//! [`crate::Kernel::Adaptive`] picks gallop-vs-block by one fixed 32×
//! length ratio ([`crate::kernel::ADAPTIVE_GALLOP_RATIO`]). That single
//! hand-tuned crossover ignores set size, selectivity, and what the
//! host's ISA actually delivers — the merge kernel beats vectorized
//! all-pairs on tiny lists, FESIA wins on low-selectivity mid-size
//! pairs, and the crossovers move between machines.
//!
//! The autotuner replaces the guess with a measurement. At run start the
//! driver samples real `(N(u), N(v))` pairs from the actual graph
//! (seeded, so `SequentialDeterministic` runs sample identically), bins
//! them into log-scale **(size, skew)** buckets, and times every
//! eligible kernel on each bucket's samples — best-of-k on the
//! monotonic clock under a bounded budget, buckets visited in fixed
//! index order. The resulting [`AutotunePlan`] maps any `(len_a,
//! len_b)` to its bucket's measured winner in a few ALU ops;
//! [`crate::Kernel::Autotuned`] dispatches through it, falling back to
//! the `Adaptive` rule for buckets the sample never hit (degenerate or
//! tiny graphs plan zero buckets and degrade to `Adaptive` wholesale).
//!
//! Two guards keep a plan from ever making things *worse* than the
//! fixed rule it replaces:
//! * the kernel `Adaptive` would pick is the **incumbent** of every
//!   bucket, and a challenger only displaces it by beating its best
//!   time by ≥ 1/4 — timing noise or cache-hot measurement flattery
//!   alone cannot flip a bucket;
//! * winners are concrete kernels only (never `Adaptive`/`Autotuned`),
//!   so dispatch cannot recurse.
//!
//! The plan's summary — sample count, planned buckets, per-family win
//! mix — flows into run reports via
//! [`crate::counters::record_autotune_plan`], and the per-call
//! planned/fallback decision mix via
//! [`crate::counters::record_autotune_dispatch`]; `report_check
//! --check-runs` gates both.

use std::time::{Duration, Instant};

use crate::fesia::FesiaPrecomp;
use crate::kernel::{Kernel, ADAPTIVE_GALLOP_RATIO};

/// Log₂ size classes for the shorter list: class = bit-length of
/// `min(len_a, len_b)`, clamped. Class 11 holds everything ≥ 1024.
pub const SIZE_CLASSES: usize = 12;
/// Log₂ skew classes for `max/min`: class 5 holds ratios ≥ 32 — aligned
/// with [`ADAPTIVE_GALLOP_RATIO`] so the galloping regime is one class.
pub const SKEW_CLASSES: usize = 6;
/// Total (size, skew) buckets a plan can hold.
pub const BUCKETS: usize = SIZE_CLASSES * SKEW_CLASSES;

#[inline]
fn bit_len(x: usize) -> usize {
    (usize::BITS - x.leading_zeros()) as usize
}

/// Bucket index of a `(len_a, len_b)` pair. Pure ALU — two bit-lengths
/// and a shift, no division: the ratio is approximated as
/// `long >> (bit_len(short) - 1)`, exact whenever `short` is a power of
/// two and within one log₂ class otherwise. This sits on the per-call
/// dispatch path, where a hardware divide would cost as much as a small
/// intersection.
#[inline]
pub fn bucket_of(len_a: usize, len_b: usize) -> usize {
    let (short, long) = if len_a <= len_b {
        (len_a, len_b)
    } else {
        (len_b, len_a)
    };
    let size = bit_len(short).min(SIZE_CLASSES - 1);
    let ratio = long >> bit_len(short).saturating_sub(1);
    let skew = bit_len(ratio).saturating_sub(1).min(SKEW_CLASSES - 1);
    size * SKEW_CLASSES + skew
}

/// One sampled `CompSim` call: the two neighbor slices, their vertex
/// ids (for the FESIA precomputed path), and the real `min_cn` the run
/// would use — so measurement exercises the same early-termination
/// behavior as production calls.
#[derive(Clone, Copy, Debug)]
pub struct SamplePair<'g> {
    pub u: u32,
    pub v: u32,
    pub a: &'g [u32],
    pub b: &'g [u32],
    pub min_cn: u64,
}

/// Measurement protocol knobs. Defaults are sized so a full plan costs
/// a few milliseconds — noise on any run long enough to care about.
#[derive(Clone, Copy, Debug)]
pub struct AutotuneConfig {
    /// Samples kept per bucket (extras are dropped, keeping measurement
    /// cost bounded regardless of sample-set size).
    pub per_bucket: usize,
    /// Buckets with fewer samples than this are left unplanned (their
    /// dispatches fall back to the `Adaptive` rule) — a couple of stray
    /// pairs is not a measurement.
    pub min_per_bucket: usize,
    /// Timed passes per (bucket, kernel); a kernel's score is the
    /// **total** time across passes. Summing (rather than taking the
    /// minimum) is what keeps the measurement honest about memory:
    /// a bucket of small lists stays cache-resident across passes, so
    /// the total reflects compute; a bucket of hub-sized lists evicts
    /// itself between passes, so the total reflects the streaming /
    /// random-probe behavior the kernel will show in production.
    pub best_of: usize,
    /// Wall-clock budget for the whole measurement pass, checked
    /// between buckets; on overrun the remaining buckets stay
    /// unplanned.
    pub budget: Duration,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        // Many distinct pairs, a single repetition. Repeating a small
        // group keeps its lists resident in L1/L2 and lets the branch
        // predictor memorize comparison sequences — flattering exactly
        // the kernels that lose in production: galloping's dependent
        // random probes look cheap against a warm long list but stall
        // on L3/DRAM when the run streams the whole graph, while the
        // block kernels' linear scans prefetch equally well either way.
        // One pass over ~200 distinct pairs sizes the measurement
        // working set like the production working set (hub lists large
        // enough to fall out of L2), stretches each timing window far
        // past clock-read granularity, and charges every kernel the
        // same first-touch costs.
        AutotuneConfig {
            per_bucket: 192,
            min_per_bucket: 3,
            best_of: 2,
            budget: Duration::from_millis(150),
        }
    }
}

/// Build-time summary of a plan, recorded into the run's counter scope
/// by the driver (see [`crate::counters::record_autotune_plan`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Sampled pairs the plan was measured on.
    pub samples: u64,
    /// Buckets that got a measured winner.
    pub buckets: u64,
    /// Buckets won by the merge kernel.
    pub wins_merge: u64,
    /// Buckets won by the galloping kernel.
    pub wins_gallop: u64,
    /// Buckets won by the best block/pivot kernel for the host ISA.
    pub wins_block: u64,
    /// Buckets won by the FESIA hash kernel.
    pub wins_fesia: u64,
    /// Buckets won by the shuffling kernel.
    pub wins_shuffle: u64,
}

/// A measured dispatch table: per-bucket winning kernels.
#[derive(Clone, Debug)]
pub struct AutotunePlan {
    winners: [Option<Kernel>; BUCKETS],
    stats: PlanStats,
}

impl AutotunePlan {
    /// An empty plan: every dispatch falls back to the `Adaptive` rule.
    /// What degenerate graphs (no edges, fewer samples than
    /// `min_per_bucket` everywhere) get.
    pub fn empty() -> AutotunePlan {
        AutotunePlan {
            winners: [None; BUCKETS],
            stats: PlanStats::default(),
        }
    }

    /// The concrete kernels a plan may pick, in fixed measurement
    /// order. `Adaptive`'s own candidates ([`Kernel::auto`] and
    /// galloping) are included, so a plan is a strict generalization of
    /// the fixed rule; *both* block widths are candidates because the
    /// narrower AVX2 kernel beats AVX-512 on some hosts and shapes
    /// (unavailable ISAs are filtered at measurement time).
    fn candidates() -> [Kernel; 6] {
        [
            Kernel::MergeEarly,
            Kernel::Galloping,
            Kernel::auto(),
            Kernel::BlockAvx2,
            Kernel::Shuffling,
            Kernel::Fesia,
        ]
    }

    /// The kernel the fixed `Adaptive` rule would pick for a bucket —
    /// the incumbent a challenger must clearly beat.
    fn incumbent(bucket: usize) -> Kernel {
        const {
            assert!(ADAPTIVE_GALLOP_RATIO == 32, "skew classes assume 32×");
        }
        if bucket % SKEW_CLASSES == SKEW_CLASSES - 1 {
            Kernel::Galloping
        } else {
            Kernel::auto()
        }
    }

    /// Measures `candidates` on `samples` and returns the plan.
    /// Deterministic inputs in, fixed bucket and candidate order, with
    /// the per-bucket incumbent-hysteresis guard; only the timings
    /// themselves vary between hosts.
    pub fn measure(
        samples: &[SamplePair<'_>],
        fesia: Option<&FesiaPrecomp>,
        cfg: &AutotuneConfig,
    ) -> AutotunePlan {
        let mut groups: Vec<Vec<SamplePair<'_>>> = vec![Vec::new(); BUCKETS];
        for &s in samples {
            // Trivial pairs — decided by the Definition 3.9 pre-checks
            // before any list is touched — never reach the plan at
            // dispatch time (see `Kernel::Autotuned`), so timing them
            // would only launder noise into winners and burn budget.
            if s.min_cn <= 2
                || (s.a.len() as u64 + 2) < s.min_cn
                || (s.b.len() as u64 + 2) < s.min_cn
            {
                continue;
            }
            let g = &mut groups[bucket_of(s.a.len(), s.b.len())];
            if g.len() < cfg.per_bucket {
                g.push(s);
            }
        }
        let start = Instant::now();
        let mut plan = AutotunePlan::empty();
        plan.stats.samples = samples.len() as u64;
        for (bucket, group) in groups.iter().enumerate() {
            if group.len() < cfg.min_per_bucket {
                continue;
            }
            if start.elapsed() > cfg.budget {
                break;
            }
            let incumbent = Self::incumbent(bucket);
            std::hint::black_box(warm_group(group));
            let incumbent_ns = time_kernel(incumbent, group, fesia, cfg.best_of);
            let mut best = (incumbent, incumbent_ns);
            let dump = std::env::var_os("PPSCAN_AUTOTUNE_DUMP").is_some();
            if dump {
                eprintln!(
                    "bucket {bucket:2} (size {:2}, skew {}) n={:3} {}={}ns/pair",
                    bucket / SKEW_CLASSES,
                    bucket % SKEW_CLASSES,
                    group.len(),
                    incumbent.name(),
                    incumbent_ns / group.len() as u64,
                );
            }
            let mut timed = [incumbent; 8];
            let mut n_timed = 1;
            for k in Self::candidates() {
                // Skip unavailable ISAs and duplicates (`Kernel::auto()`
                // aliases one of the explicit block candidates).
                if !k.available() || timed[..n_timed].contains(&k) {
                    continue;
                }
                timed[n_timed] = k;
                n_timed += 1;
                let ns = time_kernel(k, group, fesia, cfg.best_of);
                if dump {
                    eprintln!(
                        "            {:>12}={}ns/pair",
                        k.name(),
                        ns / group.len() as u64
                    );
                }
                // Hysteresis, scaled by how faithfully measurement
                // predicts production for the challenger's access
                // pattern. Streaming challengers (merge, shuffling, the
                // block widths) touch exactly the bytes production will
                // touch, so a ≥ 1/4 measured win is trusted. Galloping's
                // random probes and FESIA's auxiliary layouts are warm
                // under measurement but miss in production — webbase-
                // sized graphs showed FESIA winning a measured bucket it
                // loses 10× end to end — so those challengers must win
                // by ≥ 2× before they displace a streaming best.
                let wins = if matches!(k, Kernel::Galloping | Kernel::Fesia) {
                    ns.saturating_mul(2) < best.1
                } else {
                    ns.saturating_mul(4) < best.1.saturating_mul(3)
                };
                if wins {
                    best = (k, ns);
                }
            }
            plan.winners[bucket] = Some(best.0);
            plan.stats.buckets += 1;
            match best.0 {
                Kernel::MergeEarly => plan.stats.wins_merge += 1,
                Kernel::Galloping => plan.stats.wins_gallop += 1,
                Kernel::Shuffling => plan.stats.wins_shuffle += 1,
                Kernel::Fesia => plan.stats.wins_fesia += 1,
                _ => plan.stats.wins_block += 1,
            }
        }
        plan
    }

    /// The measured winner for a `(len_a, len_b)` pair, or `None` if
    /// its bucket is unplanned (caller falls back to the `Adaptive`
    /// rule).
    #[inline]
    pub fn winner(&self, len_a: usize, len_b: usize) -> Option<Kernel> {
        self.winners[bucket_of(len_a, len_b)]
    }

    /// Build-time summary for counter recording.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Whether any bucket has a measured winner.
    pub fn is_empty(&self) -> bool {
        self.stats.buckets == 0
    }
}

/// Total nanoseconds across `passes` timed passes of `kernel` over one
/// bucket's samples. Runs the real kernels on the real slices —
/// including the FESIA precomputed path when a precomp is supplied —
/// so the score includes each kernel's true early-termination behavior.
/// See [`AutotuneConfig::best_of`] for why the passes are summed.
fn time_kernel(
    kernel: Kernel,
    group: &[SamplePair<'_>],
    fesia: Option<&FesiaPrecomp>,
    passes: usize,
) -> u64 {
    let t = Instant::now();
    for _ in 0..passes.max(1) {
        for s in group {
            let out = match (kernel, fesia) {
                (Kernel::Fesia, Some(f)) => {
                    crate::fesia::check_pre(f, s.u, s.v, s.a, s.b, s.min_cn)
                }
                _ => kernel.check(s.a, s.b, s.min_cn),
            };
            std::hint::black_box(out);
        }
    }
    (t.elapsed().as_nanos() as u64).max(1)
}

/// Streams every byte of a group's slices once, without running any
/// kernel — a neutral warm-up so the first *timed* kernel is not the
/// one paying all the first-touch misses. (For hub-sized groups this
/// is moot — they evict themselves — which is exactly the production
/// behavior the timing should see.)
fn warm_group(group: &[SamplePair<'_>]) -> u64 {
    let mut acc = 0u64;
    for s in group {
        acc = acc
            .wrapping_add(s.a.iter().map(|&x| x as u64).sum::<u64>())
            .wrapping_add(s.b.iter().map(|&x| x as u64).sum::<u64>());
    }
    acc
}

/// Reusable per-graph kernel precomputation, threaded through
/// `PpScanConfig` and the GS*-Index build: the FESIA hashed layout
/// (used by [`Kernel::Fesia`] and as an autotune candidate) and the
/// measured [`AutotunePlan`] (used by [`Kernel::Autotuned`]). Plain
/// owned data — `Send + Sync`, shared via `Arc` across worker threads
/// and index snapshots.
#[derive(Clone)]
pub struct KernelPrecomp {
    fesia: Option<FesiaPrecomp>,
    plan: Option<AutotunePlan>,
}

impl KernelPrecomp {
    pub fn new(fesia: Option<FesiaPrecomp>, plan: Option<AutotunePlan>) -> KernelPrecomp {
        KernelPrecomp { fesia, plan }
    }

    pub fn fesia(&self) -> Option<&FesiaPrecomp> {
        self.fesia.as_ref()
    }

    /// Mutable access for the `apply_delta` repair path.
    pub fn fesia_mut(&mut self) -> Option<&mut FesiaPrecomp> {
        self.fesia.as_mut()
    }

    pub fn plan(&self) -> Option<&AutotunePlan> {
        self.plan.as_ref()
    }

    /// Approximate owned heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.fesia.as_ref().map_or(0, FesiaPrecomp::heap_bytes)
            + self
                .plan
                .as_ref()
                .map_or(0, |_| std::mem::size_of::<AutotunePlan>())
    }
}

impl std::fmt::Debug for KernelPrecomp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelPrecomp")
            .field("fesia", &self.fesia.as_ref().map(|p| p.buckets()))
            .field(
                "plan_buckets",
                &self.plan.as_ref().map(|p| p.stats().buckets),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Similarity;

    #[test]
    fn bucket_of_is_log_scaled_and_total() {
        // Size classes grow with the shorter list, skew with the ratio.
        assert_eq!(bucket_of(0, 0), bucket_of(0, 0));
        assert!(bucket_of(1, 1) < bucket_of(100, 100));
        assert_eq!(bucket_of(7, 100), bucket_of(100, 7), "symmetric");
        // The galloping regime (ratio ≥ 32) is exactly the top skew
        // class, matching ADAPTIVE_GALLOP_RATIO.
        assert_eq!(bucket_of(4, 4 * 32) % SKEW_CLASSES, SKEW_CLASSES - 1);
        assert_ne!(bucket_of(4, 4 * 31) % SKEW_CLASSES, SKEW_CLASSES - 1);
        for (la, lb) in [(0, 0), (0, 9), (1, 1), (5, 1_000_000), (usize::MAX, 1)] {
            assert!(bucket_of(la, lb) < BUCKETS, "({la},{lb}) out of range");
        }
    }

    #[test]
    fn empty_plan_never_answers() {
        let plan = AutotunePlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.winner(10, 20), None);
        assert_eq!(plan.stats(), &PlanStats::default());
    }

    #[test]
    fn too_few_samples_leave_buckets_unplanned() {
        // Degenerate-graph safety: below min_per_bucket nothing is
        // planned, so Autotuned degrades to the Adaptive rule.
        let a: Vec<u32> = (0..10).collect();
        let b: Vec<u32> = (0..10).map(|x| x * 2).collect();
        let samples = [SamplePair {
            u: 0,
            v: 1,
            a: &a,
            b: &b,
            min_cn: 4,
        }];
        let plan = AutotunePlan::measure(&samples, None, &AutotuneConfig::default());
        assert!(plan.is_empty());
        assert_eq!(plan.stats().samples, 1);
    }

    #[test]
    fn measured_plan_covers_sampled_buckets_with_concrete_winners() {
        let lists: Vec<Vec<u32>> = (0..8u32)
            .map(|k| (0..40 + k * 17).map(|x| x * (k + 1)).collect())
            .collect();
        let mut samples = Vec::new();
        for (i, a) in lists.iter().enumerate() {
            for b in &lists {
                samples.push(SamplePair {
                    u: i as u32,
                    v: (i + 1) as u32 % 8,
                    a,
                    b,
                    min_cn: 8,
                });
            }
        }
        let plan = AutotunePlan::measure(&samples, None, &AutotuneConfig::default());
        assert!(!plan.is_empty());
        let stats = plan.stats();
        assert_eq!(stats.samples, samples.len() as u64);
        assert_eq!(
            stats.buckets,
            stats.wins_merge
                + stats.wins_gallop
                + stats.wins_block
                + stats.wins_fesia
                + stats.wins_shuffle,
            "every planned bucket is attributed to exactly one family"
        );
        for s in &samples {
            if let Some(w) = plan.winner(s.a.len(), s.b.len()) {
                // Winners are concrete: dispatch cannot recurse.
                assert!(!matches!(w, Kernel::Adaptive | Kernel::Autotuned));
                assert!(w.available());
                // And every winner still honors the CompSim contract.
                assert_eq!(
                    w.check(s.a, s.b, s.min_cn),
                    crate::merge::check_early(s.a, s.b, s.min_cn)
                );
            }
        }
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let a: Vec<u32> = (0..64).collect();
        let samples: Vec<SamplePair<'_>> = (0..8)
            .map(|_| SamplePair {
                u: 0,
                v: 1,
                a: &a,
                b: &a,
                min_cn: 70,
            })
            .collect();
        let cfg = AutotuneConfig {
            budget: Duration::ZERO,
            ..AutotuneConfig::default()
        };
        // The budget is checked between buckets, before any work.
        let plan = AutotunePlan::measure(&samples, None, &cfg);
        assert!(plan.is_empty());
    }

    #[test]
    fn precomp_container_roundtrip() {
        let adj: Vec<Vec<u32>> = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let fesia = FesiaPrecomp::build(3, 2.0, |u| &adj[u as usize]);
        let pre = KernelPrecomp::new(Some(fesia), Some(AutotunePlan::empty()));
        assert!(pre.fesia().is_some());
        assert!(pre.plan().is_some());
        assert!(pre.heap_bytes() > 0);
        assert_eq!(
            crate::fesia::check_pre(pre.fesia().unwrap(), 0, 1, &adj[0], &adj[1], 3),
            Similarity::Sim
        );
        let dbg = format!("{pre:?}");
        assert!(dbg.contains("KernelPrecomp"));
    }
}
