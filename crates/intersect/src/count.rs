//! Exact intersection counting (no early termination).
//!
//! `CompSim` only needs the similarity *predicate*, but two consumers
//! need the exact count `|N(u) ∩ N(v)|`:
//!
//! * index construction (GS*-Index stores every edge's exact similarity
//!   so any (ε, µ) can be answered later), and
//! * SCAN-XP-style exhaustive baselines.
//!
//! [`count`] dispatches to a block-based all-pairs SIMD counter (the same
//! rotate-and-compare scheme as [`crate::simd_block`], minus the bound
//! bookkeeping) when the CPU supports it, falling back to the scalar
//! merge count.

use crate::counters;
use crate::merge;

/// [`count`] with an optional per-graph precomputation: when `pre`
/// carries a FESIA layout with live entries for both vertices, the
/// hash-pruned [`crate::fesia::count_pre`] path answers; otherwise this
/// is exactly [`count`]. Index construction threads its precomp through
/// here so rebuilds after the first reuse the hashed layouts.
pub fn count_with(
    pre: Option<(&crate::autotune::KernelPrecomp, u32, u32)>,
    a: &[u32],
    b: &[u32],
) -> u64 {
    if let Some((p, u, v)) = pre {
        if let Some(f) = p.fesia() {
            if let Some(c) = crate::fesia::count_pre(f, u, v, a, b) {
                return c;
            }
        }
    }
    count(a, b)
}

/// Exact `|a ∩ b|` for sorted, strictly increasing slices, using the
/// widest SIMD available.
pub fn count(a: &[u32], b: &[u32]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::avx512_available() {
            // SAFETY: feature checked; loads are bounds-guarded.
            return unsafe { count_avx512(a, b) };
        }
        if crate::simd::avx2_available() {
            // SAFETY: feature checked; loads are bounds-guarded.
            return unsafe { count_avx2(a, b) };
        }
    }
    merge::count_full(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: contract — call only after `is_x86_feature_detected!("avx2")`
// (checked by the dispatching wrapper above).
unsafe fn count_avx2(a: &[u32], b: &[u32]) -> u64 {
    use std::arch::x86_64::*;
    const LANES: usize = 8;
    let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    let (mut i, mut j, mut cn) = (0usize, 0usize, 0u64);
    while i + LANES <= a.len() && j + LANES <= b.len() {
        // SAFETY: guarded by the loop condition.
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const _);
        let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const _);
        let mut hits = _mm256_cmpeq_epi32(va, vb);
        let mut vb_rot = vb;
        for _ in 1..LANES {
            vb_rot = _mm256_permutevar8x32_epi32(vb_rot, rot1);
            hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vb_rot));
        }
        cn += (_mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32).count_ones() as u64;
        // SAFETY: tail indices below the guarded bounds.
        let amax = *a.get_unchecked(i + LANES - 1);
        let bmax = *b.get_unchecked(j + LANES - 1);
        if amax <= bmax {
            i += LANES;
        }
        if bmax <= amax {
            j += LANES;
        }
    }
    counters::record_scanned((i + j) as u64);
    // The final live blocks were never compared all-pairs (each loop
    // iteration retires at least one block), so the scalar tail cannot
    // double-count.
    cn + merge::count_full(&a[i..], &b[j..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// SAFETY: contract — call only after
// `is_x86_feature_detected!("avx512f")` (checked by the wrapper above).
unsafe fn count_avx512(a: &[u32], b: &[u32]) -> u64 {
    use std::arch::x86_64::*;
    const LANES: usize = 16;
    let rot1 = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
    let (mut i, mut j, mut cn) = (0usize, 0usize, 0u64);
    while i + LANES <= a.len() && j + LANES <= b.len() {
        // SAFETY: guarded by the loop condition.
        let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
        let vb = _mm512_loadu_si512(b.as_ptr().add(j) as *const _);
        let mut hits: u16 = _mm512_cmpeq_epi32_mask(va, vb);
        let mut vb_rot = vb;
        for _ in 1..LANES {
            vb_rot = _mm512_permutexvar_epi32(rot1, vb_rot);
            hits |= _mm512_cmpeq_epi32_mask(va, vb_rot);
        }
        cn += hits.count_ones() as u64;
        // SAFETY: tail indices below the guarded bounds.
        let amax = *a.get_unchecked(i + LANES - 1);
        let bmax = *b.get_unchecked(j + LANES - 1);
        if amax <= bmax {
            i += LANES;
        }
        if bmax <= amax {
            j += LANES;
        }
    }
    counters::record_scanned((i + j) as u64);
    cn + merge::count_full(&a[i..], &b[j..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_merge_on_grid() {
        for la in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 129] {
            for lb in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 129] {
                let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                assert_eq!(count(&a, &b), merge::count_full(&a, &b), "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn identical_and_disjoint() {
        let a: Vec<u32> = (0..1000).collect();
        assert_eq!(count(&a, &a), 1000);
        let b: Vec<u32> = (2000..3000).collect();
        assert_eq!(count(&a, &b), 0);
        assert_eq!(count(&[], &a), 0);
    }

    #[test]
    fn random_arrays_match_reference() {
        let mut x = 0xabcdef12345u64;
        let mut next = move |m: u32| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % m as u64) as u32
        };
        for round in 0..50 {
            let la = (next(200) + 1) as usize;
            let lb = (next(200) + 1) as usize;
            let mut a: Vec<u32> = (0..la).map(|_| next(300)).collect();
            let mut b: Vec<u32> = (0..lb).map(|_| next(300)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(count(&a, &b), merge::count_full(&a, &b), "round {round}");
        }
    }
}
