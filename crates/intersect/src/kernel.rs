//! Kernel selection and dispatch.
//!
//! Every SCAN-family algorithm in `ppscan-core` is parameterised by a
//! [`Kernel`], so the harness can reproduce the paper's ppSCAN vs
//! ppSCAN-NO comparison (Figure 5: vectorized vs non-vectorized core
//! checking) and the AVX2-vs-AVX-512 platform contrast (Figures 2/3/5)
//! by switching this one enum.

use crate::similarity::Similarity;
use crate::{galloping, merge, pivot, simd, simd_block};

/// A `CompSim` set-intersection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Merge-based with early termination — what sequential pSCAN uses,
    /// and the paper's "ppSCAN-NO" (no vectorization) configuration.
    MergeEarly,
    /// Scalar pivot-based with early termination (Algorithm 6 without the
    /// vector instructions).
    PivotScalar,
    /// Pivot-based AVX2 (8 lanes) — the paper's CPU-server platform.
    PivotAvx2,
    /// Pivot-based AVX-512 (16 lanes) — the paper's KNL platform.
    PivotAvx512,
    /// Galloping with early termination (related-work comparison only).
    Galloping,
    /// Block-based all-pairs AVX2 (extension; see [`crate::simd_block`]) —
    /// the out-of-order-CPU-friendly vectorization.
    BlockAvx2,
    /// Block-based all-pairs AVX-512 (extension).
    BlockAvx512,
    /// Degree-ratio adaptive dispatch (extension): galloping when one
    /// neighbor list is at least [`ADAPTIVE_GALLOP_RATIO`]× longer than
    /// the other, the best available block kernel otherwise. The mix of
    /// decisions is recorded via [`counters::record_adaptive_choice`]
    /// so `fig4_invocations` and the ablations can report it.
    Adaptive,
}

/// Length ratio at which [`Kernel::Adaptive`] switches from the block
/// kernel to galloping. Tuned on the skewed ROLL suite: galloping wins
/// once the long list dwarfs the short one enough that O(s·log l) beats
/// the block kernel's O(s + l) streaming — on AVX-512 hardware that
/// crossover sits around 32× (16 lanes × ~2 for early termination).
pub const ADAPTIVE_GALLOP_RATIO: usize = 32;

impl Kernel {
    /// All kernels, for exhaustive differential testing.
    pub const ALL: [Kernel; 8] = [
        Kernel::MergeEarly,
        Kernel::PivotScalar,
        Kernel::PivotAvx2,
        Kernel::PivotAvx512,
        Kernel::Galloping,
        Kernel::BlockAvx2,
        Kernel::BlockAvx512,
        Kernel::Adaptive,
    ];

    /// The fastest vectorized kernel this CPU supports, falling back to
    /// the scalar pivot kernel. Prefers the block kernels: on out-of-order
    /// x86 they dominate the paper's pivot kernels on dense inputs while
    /// matching them on skewed ones (see `benches/intersect.rs`).
    pub fn auto() -> Kernel {
        if simd::avx512_available() {
            Kernel::BlockAvx512
        } else if simd::avx2_available() {
            Kernel::BlockAvx2
        } else {
            Kernel::PivotScalar
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Kernel::PivotAvx2 | Kernel::BlockAvx2 => simd::avx2_available(),
            Kernel::PivotAvx512 | Kernel::BlockAvx512 => simd::avx512_available(),
            _ => true,
        }
    }

    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MergeEarly => "merge",
            Kernel::PivotScalar => "pivot-scalar",
            Kernel::PivotAvx2 => "pivot-avx2",
            Kernel::PivotAvx512 => "pivot-avx512",
            Kernel::Galloping => "galloping",
            Kernel::BlockAvx2 => "block-avx2",
            Kernel::BlockAvx512 => "block-avx512",
            Kernel::Adaptive => "adaptive",
        }
    }

    /// Parses a kernel name as printed by [`Kernel::name`].
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "merge" => Some(Kernel::MergeEarly),
            "pivot-scalar" | "scalar" => Some(Kernel::PivotScalar),
            "pivot-avx2" | "avx2" => Some(Kernel::PivotAvx2),
            "pivot-avx512" | "avx512" => Some(Kernel::PivotAvx512),
            "galloping" => Some(Kernel::Galloping),
            "block-avx2" => Some(Kernel::BlockAvx2),
            "block-avx512" => Some(Kernel::BlockAvx512),
            "adaptive" => Some(Kernel::Adaptive),
            _ => None,
        }
    }

    /// Evaluates `CompSim(u, v)` over the sorted neighbor arrays
    /// `a = N(u)`, `b = N(v)` against the threshold `min_cn`
    /// (see the crate docs for the exact contract).
    #[inline]
    pub fn check(self, a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        debug_assert!(
            a.last().is_none_or(|&x| x <= i32::MAX as u32)
                && b.last().is_none_or(|&x| x <= i32::MAX as u32),
            "vertex ids must fit in i32 for the SIMD comparisons"
        );
        match self {
            Kernel::MergeEarly => merge::check_early(a, b, min_cn),
            Kernel::PivotScalar => pivot::check_early(a, b, min_cn),
            Kernel::PivotAvx2 => simd::avx2::check_early(a, b, min_cn),
            Kernel::PivotAvx512 => simd::avx512::check_early(a, b, min_cn),
            Kernel::Galloping => galloping::check_early(a, b, min_cn),
            Kernel::BlockAvx2 => simd_block::avx2::check_early(a, b, min_cn),
            Kernel::BlockAvx512 => simd_block::avx512::check_early(a, b, min_cn),
            Kernel::Adaptive => {
                let (short, long) = if a.len() <= b.len() {
                    (a.len(), b.len())
                } else {
                    (b.len(), a.len())
                };
                let gallop = long >= short.max(1).saturating_mul(ADAPTIVE_GALLOP_RATIO);
                crate::counters::record_adaptive_choice(gallop);
                if gallop {
                    galloping::check_early(a, b, min_cn)
                } else if simd::avx512_available() {
                    simd_block::avx512::check_early(a, b, min_cn)
                } else if simd::avx2_available() {
                    simd_block::avx2::check_early(a, b, min_cn)
                } else {
                    pivot::check_early(a, b, min_cn)
                }
            }
        }
    }
}

impl Default for Kernel {
    /// Defaults to the best vectorized kernel available.
    fn default() -> Self {
        Kernel::auto()
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_is_available() {
        assert!(Kernel::auto().available());
        assert!(Kernel::MergeEarly.available());
    }

    #[test]
    fn names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(Kernel::parse("avx512"), Some(Kernel::PivotAvx512));
        assert_eq!(Kernel::parse("bogus"), None);
    }

    #[test]
    fn all_available_kernels_agree() {
        let a: Vec<u32> = (0..50).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..80).map(|x| x * 2).collect();
        let expected = merge::check_reference(&a, &b, 7);
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            assert_eq!(k.check(&a, &b, 7), expected, "kernel {k}");
        }
    }

    #[test]
    fn adaptive_picks_galloping_only_on_skewed_pairs() {
        use crate::counters::CounterScope;
        let short: Vec<u32> = (0..4).map(|x| x * 7).collect();
        let long: Vec<u32> = (0..(4 * ADAPTIVE_GALLOP_RATIO) as u32).collect();
        let balanced: Vec<u32> = (0..64).map(|x| x * 2).collect();

        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            // Skewed: ratio exactly at the threshold → galloping.
            Kernel::Adaptive.check(&short, &long, 1);
            Kernel::Adaptive.check(&long, &short, 1); // order-insensitive
                                                      // Balanced → block kernel.
            Kernel::Adaptive.check(&balanced, &long, 1);
        });
        assert_eq!(d.adaptive_gallop, 2);
        assert_eq!(d.adaptive_block, 1);
        assert_eq!(d.compsim_invocations, 3, "delegate records exactly once");

        // Both branches agree with the reference on both input shapes.
        for (x, y) in [(&short, &long), (&balanced, &long)] {
            assert_eq!(
                Kernel::Adaptive.check(x, y, 3),
                merge::check_reference(x, y, 3)
            );
        }
    }
}
