//! Kernel selection and dispatch.
//!
//! Every SCAN-family algorithm in `ppscan-core` is parameterised by a
//! [`Kernel`], so the harness can reproduce the paper's ppSCAN vs
//! ppSCAN-NO comparison (Figure 5: vectorized vs non-vectorized core
//! checking) and the AVX2-vs-AVX-512 platform contrast (Figures 2/3/5)
//! by switching this one enum.

use crate::autotune::KernelPrecomp;
use crate::similarity::Similarity;
use crate::{fesia, galloping, merge, pivot, shuffling, simd, simd_block};

/// A `CompSim` set-intersection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Merge-based with early termination — what sequential pSCAN uses,
    /// and the paper's "ppSCAN-NO" (no vectorization) configuration.
    MergeEarly,
    /// Scalar pivot-based with early termination (Algorithm 6 without the
    /// vector instructions).
    PivotScalar,
    /// Pivot-based AVX2 (8 lanes) — the paper's CPU-server platform.
    PivotAvx2,
    /// Pivot-based AVX-512 (16 lanes) — the paper's KNL platform.
    PivotAvx512,
    /// Galloping with early termination (related-work comparison only).
    Galloping,
    /// Block-based all-pairs AVX2 (extension; see [`crate::simd_block`]) —
    /// the out-of-order-CPU-friendly vectorization.
    BlockAvx2,
    /// Block-based all-pairs AVX-512 (extension).
    BlockAvx512,
    /// Degree-ratio adaptive dispatch (extension): galloping when one
    /// neighbor list is at least [`ADAPTIVE_GALLOP_RATIO`]× longer than
    /// the other, the best available block kernel otherwise. The mix of
    /// decisions is recorded via [`counters::record_adaptive_choice`]
    /// so `fig4_invocations` and the ablations can report it.
    Adaptive,
    /// FESIA-style hash-bitmap intersection (extension; see
    /// [`crate::fesia`]): per-vertex hashed layouts from a
    /// [`KernelPrecomp`] when one is threaded through
    /// ([`Kernel::check_pre`]), a transient-bitmap flat path otherwise.
    Fesia,
    /// Shuffling all-pairs block compare without bound maintenance
    /// (extension; see [`crate::shuffling`]) — the lean kernel for
    /// balanced short lists.
    Shuffling,
    /// Measured per-bucket dispatch (extension; see [`crate::autotune`]):
    /// routes each call to the kernel that *won the measurement* for its
    /// (size, skew) bucket, falling back to the [`Kernel::Adaptive`] rule
    /// for unplanned buckets or when no [`KernelPrecomp`] carries a plan.
    /// The per-call planned/fallback mix is recorded via
    /// [`counters::record_autotune_dispatch`].
    Autotuned,
}

/// Length ratio at which [`Kernel::Adaptive`] switches from the block
/// kernel to galloping. Tuned on the skewed ROLL suite: galloping wins
/// once the long list dwarfs the short one enough that O(s·log l) beats
/// the block kernel's O(s + l) streaming — on AVX-512 hardware that
/// crossover sits around 32× (16 lanes × ~2 for early termination).
pub const ADAPTIVE_GALLOP_RATIO: usize = 32;

impl Kernel {
    /// All kernels, for exhaustive differential testing.
    pub const ALL: [Kernel; 11] = [
        Kernel::MergeEarly,
        Kernel::PivotScalar,
        Kernel::PivotAvx2,
        Kernel::PivotAvx512,
        Kernel::Galloping,
        Kernel::BlockAvx2,
        Kernel::BlockAvx512,
        Kernel::Adaptive,
        Kernel::Fesia,
        Kernel::Shuffling,
        Kernel::Autotuned,
    ];

    /// The fastest vectorized kernel this CPU supports, falling back to
    /// the scalar pivot kernel. Prefers the block kernels: on out-of-order
    /// x86 they dominate the paper's pivot kernels on dense inputs while
    /// matching them on skewed ones (see `benches/intersect.rs`).
    pub fn auto() -> Kernel {
        if simd::avx512_available() {
            Kernel::BlockAvx512
        } else if simd::avx2_available() {
            Kernel::BlockAvx2
        } else {
            Kernel::PivotScalar
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Kernel::PivotAvx2 | Kernel::BlockAvx2 => simd::avx2_available(),
            Kernel::PivotAvx512 | Kernel::BlockAvx512 => simd::avx512_available(),
            _ => true,
        }
    }

    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MergeEarly => "merge",
            Kernel::PivotScalar => "pivot-scalar",
            Kernel::PivotAvx2 => "pivot-avx2",
            Kernel::PivotAvx512 => "pivot-avx512",
            Kernel::Galloping => "galloping",
            Kernel::BlockAvx2 => "block-avx2",
            Kernel::BlockAvx512 => "block-avx512",
            Kernel::Adaptive => "adaptive",
            Kernel::Fesia => "fesia",
            Kernel::Shuffling => "shuffling",
            Kernel::Autotuned => "autotuned",
        }
    }

    /// Parses a kernel name as printed by [`Kernel::name`].
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "merge" => Some(Kernel::MergeEarly),
            "pivot-scalar" | "scalar" => Some(Kernel::PivotScalar),
            "pivot-avx2" | "avx2" => Some(Kernel::PivotAvx2),
            "pivot-avx512" | "avx512" => Some(Kernel::PivotAvx512),
            "galloping" => Some(Kernel::Galloping),
            "block-avx2" => Some(Kernel::BlockAvx2),
            "block-avx512" => Some(Kernel::BlockAvx512),
            "adaptive" => Some(Kernel::Adaptive),
            "fesia" | "hash" => Some(Kernel::Fesia),
            "shuffling" | "shuffle" => Some(Kernel::Shuffling),
            "autotuned" => Some(Kernel::Autotuned),
            _ => None,
        }
    }

    /// Evaluates `CompSim(u, v)` over the sorted neighbor arrays
    /// `a = N(u)`, `b = N(v)` against the threshold `min_cn`
    /// (see the crate docs for the exact contract). Equivalent to
    /// [`Kernel::check_pre`] with no precomputation: [`Kernel::Fesia`]
    /// takes its flat path and [`Kernel::Autotuned`] falls back to the
    /// adaptive rule.
    #[inline]
    pub fn check(self, a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        self.check_pre(PrecompCtx::NONE, a, b, min_cn)
    }

    /// [`Kernel::check`] with a per-graph precomputation context. Every
    /// kernel answers identically with or without `ctx`; the context
    /// only changes *how*: [`Kernel::Fesia`] uses its precomputed
    /// hashed layout and [`Kernel::Autotuned`] its measured plan.
    #[inline]
    pub fn check_pre(self, ctx: PrecompCtx<'_>, a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        debug_assert!(
            a.last().is_none_or(|&x| x <= i32::MAX as u32)
                && b.last().is_none_or(|&x| x <= i32::MAX as u32),
            "vertex ids must fit in i32 for the SIMD comparisons"
        );
        match self {
            Kernel::MergeEarly => merge::check_early(a, b, min_cn),
            Kernel::PivotScalar => pivot::check_early(a, b, min_cn),
            Kernel::PivotAvx2 => simd::avx2::check_early(a, b, min_cn),
            Kernel::PivotAvx512 => simd::avx512::check_early(a, b, min_cn),
            Kernel::Galloping => galloping::check_early(a, b, min_cn),
            Kernel::BlockAvx2 => simd_block::avx2::check_early(a, b, min_cn),
            Kernel::BlockAvx512 => simd_block::avx512::check_early(a, b, min_cn),
            Kernel::Adaptive => {
                let (short, long) = if a.len() <= b.len() {
                    (a.len(), b.len())
                } else {
                    (b.len(), a.len())
                };
                let gallop = long >= short.max(1).saturating_mul(ADAPTIVE_GALLOP_RATIO);
                crate::counters::record_adaptive_choice(gallop);
                if gallop {
                    galloping::check_early(a, b, min_cn)
                } else if simd::avx512_available() {
                    simd_block::avx512::check_early(a, b, min_cn)
                } else if simd::avx2_available() {
                    simd_block::avx2::check_early(a, b, min_cn)
                } else {
                    pivot::check_early(a, b, min_cn)
                }
            }
            Kernel::Fesia => match ctx.fesia() {
                Some((pre, u, v)) => fesia::check_pre(pre, u, v, a, b, min_cn),
                None => fesia::check_flat(a, b, min_cn),
            },
            Kernel::Shuffling => shuffling::check_early(a, b, min_cn),
            Kernel::Autotuned => {
                // Trivial calls — decided by the Definition 3.9 pre-checks
                // every kernel performs before touching the lists — exit
                // here, before the bucket lookup. At large ε most calls
                // are trivial (min_cn exceeds the shorter list) and cost
                // single-digit nanoseconds; paying the dispatch machinery
                // on them is pure overhead, and no kernel choice could
                // matter anyway. Mirrors the delegates' counter behavior:
                // invocation recorded, nothing scanned.
                if min_cn <= 2 {
                    crate::counters::record_invocation();
                    return Similarity::Sim;
                }
                if (a.len() as u64 + 2) < min_cn || (b.len() as u64 + 2) < min_cn {
                    crate::counters::record_invocation();
                    return Similarity::NSim;
                }
                let winner = ctx.plan().and_then(|plan| plan.winner(a.len(), b.len()));
                match winner {
                    Some(w) => {
                        // `measure` only plans available kernels, so no
                        // per-call availability check on the hot path.
                        debug_assert!(w.available(), "plan holds unavailable kernel");
                        crate::counters::record_autotune_dispatch(true);
                        // Plans never contain Adaptive/Autotuned, so this
                        // recursion is exactly one level deep.
                        w.check_pre(ctx, a, b, min_cn)
                    }
                    None => {
                        crate::counters::record_autotune_dispatch(false);
                        Kernel::Adaptive.check_pre(ctx, a, b, min_cn)
                    }
                }
            }
        }
    }
}

/// Borrowed precomputation context for [`Kernel::check_pre`]: the
/// graph's [`KernelPrecomp`] plus the vertex ids of the pair being
/// checked (the FESIA path is keyed by vertex, not by slice).
/// `Copy`-cheap — two machine words — so it rides the hot call path
/// for free; [`PrecompCtx::NONE`] (= `Default`) means "no
/// precomputation", which every kernel handles.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrecompCtx<'p> {
    ctx: Option<(&'p KernelPrecomp, u32, u32)>,
}

impl<'p> PrecompCtx<'p> {
    /// The empty context: kernels use their precomputation-free paths.
    pub const NONE: PrecompCtx<'static> = PrecompCtx { ctx: None };

    /// Context for checking the pair `(u, v)` under `pre`.
    #[inline]
    pub fn new(pre: &'p KernelPrecomp, u: u32, v: u32) -> PrecompCtx<'p> {
        PrecompCtx {
            ctx: Some((pre, u, v)),
        }
    }

    #[inline]
    fn fesia(self) -> Option<(&'p crate::fesia::FesiaPrecomp, u32, u32)> {
        let (pre, u, v) = self.ctx?;
        Some((pre.fesia()?, u, v))
    }

    #[inline]
    fn plan(self) -> Option<&'p crate::autotune::AutotunePlan> {
        self.ctx?.0.plan()
    }
}

impl Default for Kernel {
    /// Defaults to the best vectorized kernel available.
    fn default() -> Self {
        Kernel::auto()
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_is_available() {
        assert!(Kernel::auto().available());
        assert!(Kernel::MergeEarly.available());
    }

    #[test]
    fn names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(Kernel::parse("avx512"), Some(Kernel::PivotAvx512));
        assert_eq!(Kernel::parse("hash"), Some(Kernel::Fesia));
        assert_eq!(Kernel::parse("shuffle"), Some(Kernel::Shuffling));
        assert_eq!(Kernel::parse("bogus"), None);
    }

    #[test]
    fn names_are_pinned() {
        // CLI `--kernel` values and report `config` identity depend on
        // these exact strings; adding a variant must extend this list.
        let names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "merge",
                "pivot-scalar",
                "pivot-avx2",
                "pivot-avx512",
                "galloping",
                "block-avx2",
                "block-avx512",
                "adaptive",
                "fesia",
                "shuffling",
                "autotuned",
            ]
        );
    }

    #[test]
    fn all_available_kernels_agree() {
        let a: Vec<u32> = (0..50).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..80).map(|x| x * 2).collect();
        let expected = merge::check_reference(&a, &b, 7);
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            assert_eq!(k.check(&a, &b, 7), expected, "kernel {k}");
        }
    }

    #[test]
    fn adaptive_picks_galloping_only_on_skewed_pairs() {
        use crate::counters::CounterScope;
        let short: Vec<u32> = (0..4).map(|x| x * 7).collect();
        let long: Vec<u32> = (0..(4 * ADAPTIVE_GALLOP_RATIO) as u32).collect();
        let balanced: Vec<u32> = (0..64).map(|x| x * 2).collect();

        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            // Skewed: ratio exactly at the threshold → galloping.
            Kernel::Adaptive.check(&short, &long, 1);
            Kernel::Adaptive.check(&long, &short, 1); // order-insensitive
                                                      // Balanced → block kernel.
            Kernel::Adaptive.check(&balanced, &long, 1);
        });
        assert_eq!(d.adaptive_gallop, 2);
        assert_eq!(d.adaptive_block, 1);
        assert_eq!(d.compsim_invocations, 3, "delegate records exactly once");

        // Both branches agree with the reference on both input shapes.
        for (x, y) in [(&short, &long), (&balanced, &long)] {
            assert_eq!(
                Kernel::Adaptive.check(x, y, 3),
                merge::check_reference(x, y, 3)
            );
        }
    }

    #[test]
    fn autotuned_without_plan_falls_back_to_adaptive() {
        use crate::counters::CounterScope;
        let a: Vec<u32> = (0..64).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..48).map(|x| x * 3).collect();
        let scope = CounterScope::new();
        let (d, out) = scope.measure(|| Kernel::Autotuned.check(&a, &b, 5));
        assert_eq!(out, merge::check_reference(&a, &b, 5));
        assert_eq!(d.autotune_fallback, 1);
        assert_eq!(d.autotune_planned, 0);
        assert_eq!(d.adaptive_block, 1, "fallback takes the adaptive rule");
        assert_eq!(d.compsim_invocations, 1, "delegate records exactly once");
    }

    #[test]
    fn autotuned_with_plan_dispatches_winners() {
        use crate::autotune::{AutotuneConfig, AutotunePlan, SamplePair};
        use crate::counters::CounterScope;
        let a: Vec<u32> = (0..64).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..48).map(|x| x * 3).collect();
        let samples: Vec<SamplePair<'_>> = (0..8)
            .map(|_| SamplePair {
                u: 0,
                v: 1,
                a: &a,
                b: &b,
                min_cn: 5,
            })
            .collect();
        let plan = AutotunePlan::measure(&samples, None, &AutotuneConfig::default());
        assert!(!plan.is_empty());
        let pre = KernelPrecomp::new(None, Some(plan));
        let ctx = PrecompCtx::new(&pre, 0, 1);
        let scope = CounterScope::new();
        let (d, out) = scope.measure(|| Kernel::Autotuned.check_pre(ctx, &a, &b, 5));
        assert_eq!(out, merge::check_reference(&a, &b, 5));
        assert_eq!(d.autotune_planned, 1);
        assert_eq!(d.autotune_fallback, 0);
        assert_eq!(d.compsim_invocations, 1, "winner records exactly once");
    }

    #[test]
    fn fesia_check_uses_precomp_when_given() {
        let adj: Vec<Vec<u32>> = vec![
            (0..40).map(|x| x * 3).collect(),
            (0..50).map(|x| x * 2).collect(),
        ];
        let fesia_pre = crate::fesia::FesiaPrecomp::build(adj.len(), 45.0, |u| &adj[u as usize]);
        let pre = KernelPrecomp::new(Some(fesia_pre), None);
        let (a, b) = (&adj[0], &adj[1]);
        for min_cn in [0u64, 2, 5, 9, 30, 100] {
            let expected = merge::check_reference(a, b, min_cn);
            assert_eq!(
                Kernel::Fesia.check_pre(PrecompCtx::new(&pre, 0, 1), a, b, min_cn),
                expected
            );
            assert_eq!(Kernel::Fesia.check(a, b, min_cn), expected, "flat path");
        }
    }
}
