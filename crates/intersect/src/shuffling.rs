//! Shuffling (all-pairs block-compare) kernel for balanced short lists.
//!
//! The [`crate::simd_block`] kernels maintain the Definition 3.9
//! `du`/`dv` upper bounds on every block retire. That bookkeeping pays
//! off on long lists, where a bound exit can skip most of the work — but
//! on *short, balanced* pairs (the bulk of `CompSim` calls on low-degree
//! graphs) the whole intersection is only a few blocks, the bounds
//! almost never fire before exhaustion, and their maintenance is pure
//! overhead on the hot loop.
//!
//! This kernel is the lean variant: the same rotate-lanes all-pairs
//! equality scheme (shuffle `b`'s block through all alignments, OR the
//! equality masks, popcount once), advancing by whole blocks, with
//! exactly two exits — `Sim` as soon as `cn ≥ min_cn` (checked at block
//! granularity, so it stays exact) and `NSim` when either side is
//! exhausted. The up-front degree pre-check is kept (it is one compare
//! and prunes for free); only the per-block bound updates are dropped.
//!
//! Scalar fallback: a branch-light merge loop with the same two exits,
//! so the kernel is available on every host.

use crate::counters;
use crate::similarity::Similarity;

/// Shuffling `CompSim`; same contract as [`crate::merge::check_early`].
pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    if min_cn <= 2 {
        counters::record_invocation();
        return Similarity::Sim;
    }
    if (a.len() as u64 + 2) < min_cn || (b.len() as u64 + 2) < min_cn {
        counters::record_invocation();
        return Similarity::NSim;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::avx2_available() {
            // SAFETY: feature checked; `inner_avx2` guards all loads.
            return unsafe { inner_avx2(a, b, min_cn) };
        }
    }
    scalar(a, b, min_cn)
}

fn scalar(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    let (mut i, mut j, mut cn) = (0usize, 0usize, 2u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            cn += 1;
            if cn >= min_cn {
                counters::record_invocation_scanned((i + j) as u64);
                return Similarity::Sim;
            }
            i += 1;
            j += 1;
        } else {
            i += usize::from(x < y);
            j += usize::from(y < x);
        }
    }
    counters::record_invocation_scanned((i + j) as u64);
    Similarity::NSim
}

/// Row `r` of the maskload table: `8 - r` leading live lanes.
#[cfg(target_arch = "x86_64")]
static MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: contract — call only after `is_x86_feature_detected!("avx2")`
// (checked by the dispatching wrapper above).
unsafe fn inner_avx2(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    use std::arch::x86_64::*;
    const LANES: usize = 8;
    let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    // Dead-lane sentinels above the i32::MAX id ceiling; the two sides
    // differ so dead lanes never match each other either.
    let fill_a = _mm256_set1_epi32(-1);
    let fill_b = _mm256_set1_epi32(-2);
    let (mut i, mut j, mut cn) = (0usize, 0usize, 2u64);
    while i < a.len() && j < b.len() {
        let la = (a.len() - i).min(LANES);
        let lb = (b.len() - j).min(LANES);
        // SAFETY: maskload touches only the `la`/`lb` live lanes, which
        // the length subtraction keeps in bounds; the mask table rows
        // start at LANES - l ∈ [0, 8].
        let ma = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - la) as *const _);
        let mb = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - lb) as *const _);
        let va = _mm256_maskload_epi32(a.as_ptr().add(i) as *const i32, ma);
        let vb = _mm256_maskload_epi32(b.as_ptr().add(j) as *const i32, mb);
        let va = _mm256_blendv_epi8(fill_a, va, ma);
        let vb = _mm256_blendv_epi8(fill_b, vb, mb);
        // All-pairs equality: rotate vb through all 8 alignments.
        let mut hits = _mm256_cmpeq_epi32(va, vb);
        let mut vb_rot = vb;
        for _ in 1..LANES {
            vb_rot = _mm256_permutevar8x32_epi32(vb_rot, rot1);
            hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vb_rot));
        }
        cn += (_mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32).count_ones() as u64;
        if cn >= min_cn {
            counters::record_invocation_scanned((i + j) as u64);
            return Similarity::Sim;
        }
        // SAFETY: block-tail indices are below the live lengths.
        let amax = *a.get_unchecked(i + la - 1);
        let bmax = *b.get_unchecked(j + lb - 1);
        // Advance the block(s) with the smaller maximum; strictly
        // increasing inputs guarantee no match is skipped.
        if amax <= bmax {
            i += la;
        }
        if bmax <= amax {
            j += lb;
        }
    }
    counters::record_invocation_scanned((i + j) as u64);
    Similarity::NSim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    #[test]
    fn agrees_with_merge_on_size_grid() {
        for &la in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
            for &lb in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
                let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                for min_cn in [0u64, 2, 3, 4, 8, 16, 40, 1000] {
                    assert_eq!(
                        check_early(&a, &b, min_cn),
                        merge::check_early(&a, &b, min_cn),
                        "|a|={la} |b|={lb} min_cn={min_cn}"
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_and_simd_paths_agree() {
        let a: Vec<u32> = (0..100).map(|x| x * 3 + 1).collect();
        let b: Vec<u32> = (0..90).map(|x| x * 2 + 1).collect();
        for min_cn in [0u64, 2, 3, 7, 19, 200] {
            assert_eq!(scalar(&a, &b, min_cn), merge::check_early(&a, &b, min_cn));
            assert_eq!(
                check_early(&a, &b, min_cn),
                merge::check_early(&a, &b, min_cn)
            );
        }
    }

    #[test]
    fn identical_disjoint_and_zero_id() {
        let a: Vec<u32> = (0..512).collect();
        let c: Vec<u32> = (1000..1512).collect();
        assert_eq!(check_early(&a, &a, 514), Similarity::Sim);
        assert_eq!(check_early(&a, &a, 515), Similarity::NSim);
        assert_eq!(check_early(&a, &c, 3), Similarity::NSim);
        // Vertex id 0 must not collide with dead-lane sentinels.
        assert_eq!(
            check_early(&[0, 5], &[1, 2, 3], 3),
            merge::check_early(&[0, 5], &[1, 2, 3], 3)
        );
    }
}
