//! Scoped instrumentation counters.
//!
//! Figure 4 of the paper compares the *number of set-intersection
//! invocations* (`CompSim` calls) between pSCAN and ppSCAN, normalized by
//! |E|. These counters make that measurement available to the harness at
//! negligible cost (one relaxed fetch-add per invocation — orders of
//! magnitude cheaper than the intersection itself).
//!
//! Counters used to be process-global statics, which made every
//! counter-asserting test flaky under `cargo test`'s parallel execution
//! and let concurrent algorithm runs pollute each other's deltas. They
//! are now **scoped**: a [`CounterScope`] is an explicit handle;
//! recording only happens on threads where a scope is *active*, into
//! exactly the scopes active on that thread. With no active scope the
//! record calls are a thread-local read of an empty list — the hot path
//! stays cheap and the kernels stay oblivious.
//!
//! Worker threads do not inherit the spawner's active scopes
//! automatically (the scheduler crate knows nothing about counters).
//! Parallel algorithms capture the caller's scopes with [`inherit`] and
//! re-activate them inside each task body with [`ActiveScopes::attach`]:
//!
//! ```
//! use ppscan_intersect::counters::{self, CounterScope};
//!
//! let scope = CounterScope::new();
//! let (delta, _) = scope.measure(|| {
//!     let scopes = counters::inherit(); // capture on the caller thread
//!     std::thread::scope(|s| {
//!         s.spawn(|| {
//!             let _guard = scopes.attach(); // re-activate on the worker
//!             counters::record_invocation();
//!         });
//!     });
//! });
//! assert_eq!(delta.compsim_invocations, 1);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct ScopeInner {
    invocations: AtomicU64,
    scanned: AtomicU64,
}

thread_local! {
    /// Scopes recording on this thread. A stack: guards pop what they
    /// pushed, so nested `measure`/`attach` compose.
    static ACTIVE: RefCell<Vec<Arc<ScopeInner>>> = const { RefCell::new(Vec::new()) };
}

/// A point-in-time snapshot of one scope's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Number of `CompSim` (set-intersection) invocations.
    pub compsim_invocations: u64,
    /// Number of array elements consumed across all intersections
    /// (a proxy for comparison work).
    pub elements_scanned: u64,
}

impl CounterSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            compsim_invocations: self.compsim_invocations - earlier.compsim_invocations,
            elements_scanned: self.elements_scanned - earlier.elements_scanned,
        }
    }
}

/// An isolated counter accumulator. Cloning shares the accumulator
/// (handles are `Arc`-backed); distinct `new()` scopes never interfere,
/// across threads or within one.
#[derive(Clone, Default)]
pub struct CounterScope {
    inner: Arc<ScopeInner>,
}

impl CounterScope {
    /// Fresh scope with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activates the scope on the **current thread** until the guard
    /// drops: `record_*` calls on this thread accumulate into it.
    /// Re-activating an already-active scope is a no-op (no double
    /// counting).
    pub fn activate(&self) -> AttachGuard {
        ActiveScopes {
            scopes: vec![self.inner.clone()],
        }
        .attach()
    }

    /// Current totals of this scope.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            compsim_invocations: self.inner.invocations.load(Ordering::Relaxed),
            elements_scanned: self.inner.scanned.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with the scope active on the current thread and returns
    /// the counter delta it produced alongside `f`'s result. Parallel
    /// callees must still [`inherit`]/[`ActiveScopes::attach`] to carry
    /// the scope onto their worker threads.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (CounterSnapshot, R) {
        let before = self.snapshot();
        let guard = self.activate();
        let out = f();
        drop(guard);
        (self.snapshot().since(&before), out)
    }
}

impl std::fmt::Debug for CounterScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterScope")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// The set of scopes active on the capturing thread; send it into worker
/// threads and [`attach`](ActiveScopes::attach) there.
#[derive(Clone, Default)]
pub struct ActiveScopes {
    scopes: Vec<Arc<ScopeInner>>,
}

/// Captures the scopes currently active on this thread (cheap: one Arc
/// clone per active scope, usually zero or one).
pub fn inherit() -> ActiveScopes {
    ACTIVE.with(|a| ActiveScopes {
        scopes: a.borrow().clone(),
    })
}

impl ActiveScopes {
    /// Activates the captured scopes on the current thread until the
    /// guard drops. Scopes already active here are skipped (pointer
    /// identity), so attaching on the capturing thread itself — e.g. when
    /// a "worker" task runs inline under the sequential strategy — does
    /// not double-count.
    pub fn attach(&self) -> AttachGuard {
        let pushed = ACTIVE.with(|a| {
            let mut stack = a.borrow_mut();
            let mut pushed = 0;
            for s in &self.scopes {
                if !stack.iter().any(|t| Arc::ptr_eq(t, s)) {
                    stack.push(s.clone());
                    pushed += 1;
                }
            }
            pushed
        });
        AttachGuard { pushed }
    }
}

/// RAII guard deactivating what [`ActiveScopes::attach`] /
/// [`CounterScope::activate`] activated.
#[must_use = "dropping the guard immediately deactivates the scope"]
pub struct AttachGuard {
    pushed: usize,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            let mut stack = a.borrow_mut();
            for _ in 0..self.pushed {
                stack.pop();
            }
        });
    }
}

/// Records one `CompSim` invocation into every scope active on this
/// thread. Called by every kernel entry point.
#[inline]
pub fn record_invocation() {
    ACTIVE.with(|a| {
        for s in a.borrow().iter() {
            s.invocations.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Records `n` scanned elements into every active scope. Kernels batch
/// this per call, not per element, to keep the hot loop clean.
#[inline]
pub fn record_scanned(n: u64) {
    if n == 0 {
        return;
    }
    ACTIVE.with(|a| {
        for s in a.borrow().iter() {
            s.scanned.fetch_add(n, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            record_invocation();
            record_invocation();
            record_scanned(10);
            record_scanned(0); // no-op
        });
        assert_eq!(d.compsim_invocations, 2);
        assert_eq!(d.elements_scanned, 10);
    }

    #[test]
    fn recording_without_scope_is_a_noop() {
        let scope = CounterScope::new();
        record_invocation(); // no scope active: goes nowhere
        assert_eq!(scope.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn nested_scopes_both_record() {
        let outer = CounterScope::new();
        let inner = CounterScope::new();
        let (od, _) = outer.measure(|| {
            record_invocation();
            let (id, ()) = inner.measure(record_invocation);
            assert_eq!(id.compsim_invocations, 1);
        });
        assert_eq!(od.compsim_invocations, 2, "outer sees nested work too");
    }

    #[test]
    fn reactivating_active_scope_does_not_double_count() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            let _again = scope.activate();
            record_invocation();
        });
        assert_eq!(d.compsim_invocations, 1);
    }

    #[test]
    fn scopes_are_isolated_across_threads() {
        // Property test (satellite): per-thread scopes with interleaved
        // recording never observe each other's counts.
        let scopes: Vec<CounterScope> = (0..4).map(|_| CounterScope::new()).collect();
        std::thread::scope(|s| {
            for (i, scope) in scopes.iter().enumerate() {
                s.spawn(move || {
                    let _g = scope.activate();
                    for _ in 0..=i {
                        record_invocation();
                        record_scanned(7);
                    }
                });
            }
        });
        for (i, scope) in scopes.iter().enumerate() {
            let snap = scope.snapshot();
            assert_eq!(snap.compsim_invocations, i as u64 + 1, "scope {i}");
            assert_eq!(snap.elements_scanned, 7 * (i as u64 + 1), "scope {i}");
        }
    }

    #[test]
    fn inherit_attach_carries_scope_to_worker() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            let scopes = inherit();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = scopes.attach();
                    record_invocation();
                    record_scanned(3);
                });
                s.spawn(|| {
                    // No attach: this worker's records go nowhere.
                    record_invocation();
                });
            });
        });
        assert_eq!(d.compsim_invocations, 1);
        assert_eq!(d.elements_scanned, 3);
    }
}
