//! Global instrumentation counters.
//!
//! Figure 4 of the paper compares the *number of set-intersection
//! invocations* (`CompSim` calls) between pSCAN and ppSCAN, normalized by
//! |E|. These relaxed atomic counters make that measurement available to
//! the harness at negligible cost (one relaxed fetch-add per invocation —
//! orders of magnitude cheaper than the intersection itself).
//!
//! Counters are process-global; benchmarks snapshot and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

static COMPSIM_INVOCATIONS: AtomicU64 = AtomicU64::new(0);
static ELEMENTS_SCANNED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Number of `CompSim` (set-intersection) invocations.
    pub compsim_invocations: u64,
    /// Number of array elements consumed across all intersections
    /// (a proxy for comparison work).
    pub elements_scanned: u64,
}

impl CounterSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            compsim_invocations: self.compsim_invocations - earlier.compsim_invocations,
            elements_scanned: self.elements_scanned - earlier.elements_scanned,
        }
    }
}

/// Records one `CompSim` invocation. Called by every kernel entry point.
#[inline]
pub fn record_invocation() {
    COMPSIM_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` scanned elements. Kernels batch this per call, not per
/// element, to keep the hot loop clean.
#[inline]
pub fn record_scanned(n: u64) {
    if n > 0 {
        ELEMENTS_SCANNED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Reads the current counter values.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        compsim_invocations: COMPSIM_INVOCATIONS.load(Ordering::Relaxed),
        elements_scanned: ELEMENTS_SCANNED.load(Ordering::Relaxed),
    }
}

/// Resets both counters to zero. Tests that assert on absolute counts
/// must not run concurrently with other counting work; the harness
/// binaries use [`snapshot`]`/`[`CounterSnapshot::since`] deltas instead.
pub fn reset() {
    COMPSIM_INVOCATIONS.store(0, Ordering::Relaxed);
    ELEMENTS_SCANNED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone() {
        let before = snapshot();
        record_invocation();
        record_invocation();
        record_scanned(10);
        record_scanned(0); // no-op
        let after = snapshot();
        let d = after.since(&before);
        assert_eq!(d.compsim_invocations, 2);
        assert_eq!(d.elements_scanned, 10);
    }
}
