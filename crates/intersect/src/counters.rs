//! Scoped instrumentation counters.
//!
//! Figure 4 of the paper compares the *number of set-intersection
//! invocations* (`CompSim` calls) between pSCAN and ppSCAN, normalized by
//! |E|. These counters make that measurement available to the harness at
//! negligible cost (one thread-local increment per invocation — orders
//! of magnitude cheaper than the intersection itself).
//!
//! Counters used to be process-global statics, which made every
//! counter-asserting test flaky under `cargo test`'s parallel execution
//! and let concurrent algorithm runs pollute each other's deltas. They
//! are now **scoped**: a [`CounterScope`] is an explicit handle;
//! recording only happens on threads where a scope is *active*, into
//! exactly the scopes active on that thread.
//!
//! The record path itself never touches the scope stack: `record_*`
//! bumps plain thread-local [`Cell`]s unconditionally, and attribution
//! is deferred — each attach guard remembers the local totals at
//! activation and charges the delta to its scopes when it drops (with
//! [`CounterScope::snapshot`] folding in the current thread's still-open
//! window). This keeps the kernel hot path at two non-atomic
//! thread-local additions per `CompSim`, whether or not any scope is
//! active.
//!
//! Internally every counter is a slot in one fixed-size array (indexed
//! by the `IDX_*` constants), so the windowing machinery is written
//! once; the public [`CounterSnapshot`] keeps named fields because the
//! report schema names them.
//!
//! Scopes propagate to `ppscan_sched::WorkerPool` worker threads
//! **automatically**: the first activation registers a
//! [`ppscan_obs::propagate::Propagator`] that the pool consults when
//! capturing the submitting thread's ambient context, so algorithm code
//! never plumbs scopes through pool call sites. The manual primitives
//! remain for code that spawns raw threads outside the pool: capture
//! the caller's scopes with [`inherit`] and re-activate them on the
//! worker with [`ActiveScopes::attach`]:
//!
//! ```
//! use ppscan_intersect::counters::{self, CounterScope};
//!
//! let scope = CounterScope::new();
//! let (delta, _) = scope.measure(|| {
//!     let scopes = counters::inherit(); // capture on the caller thread
//!     std::thread::scope(|s| {
//!         s.spawn(|| {
//!             let _guard = scopes.attach(); // re-activate on the worker
//!             counters::record_invocation();
//!         });
//!     });
//! });
//! assert_eq!(delta.compsim_invocations, 1);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// Number of distinct counters a scope tracks.
const N: usize = 13;

// Slot indexes into the counter arrays.
const IDX_INVOCATIONS: usize = 0;
const IDX_SCANNED: usize = 1;
const IDX_ADAPTIVE_GALLOP: usize = 2;
const IDX_ADAPTIVE_BLOCK: usize = 3;
const IDX_AUTOTUNE_SAMPLES: usize = 4;
const IDX_AUTOTUNE_BUCKETS: usize = 5;
const IDX_AUTOTUNE_WINS_MERGE: usize = 6;
const IDX_AUTOTUNE_WINS_GALLOP: usize = 7;
const IDX_AUTOTUNE_WINS_BLOCK: usize = 8;
const IDX_AUTOTUNE_WINS_FESIA: usize = 9;
const IDX_AUTOTUNE_WINS_SHUFFLE: usize = 10;
const IDX_AUTOTUNE_PLANNED: usize = 11;
const IDX_AUTOTUNE_FALLBACK: usize = 12;

struct ScopeInner {
    counts: [AtomicU64; N],
}

impl Default for ScopeInner {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One entry on a thread's active-scope stack: the scope plus the
/// thread-local totals at the moment it was activated here. The window
/// `LOCAL - base` is what this activation charges to the scope.
struct ActiveEntry {
    scope: Arc<ScopeInner>,
    base: [u64; N],
}

thread_local! {
    /// Scopes recording on this thread. A stack: guards pop what they
    /// pushed, so nested `measure`/`attach` compose.
    static ACTIVE: RefCell<Vec<ActiveEntry>> = const { RefCell::new(Vec::new()) };
    /// This thread's monotone totals. `record_*` only ever touches
    /// these; scopes are charged by delta on guard drop.
    static LOCAL: [Cell<u64>; N] = const { [const { Cell::new(0) }; N] };
}

/// Current thread-local totals.
fn local_counts() -> [u64; N] {
    LOCAL.with(|l| std::array::from_fn(|i| l[i].get()))
}

/// A point-in-time snapshot of one scope's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Number of `CompSim` (set-intersection) invocations.
    pub compsim_invocations: u64,
    /// Number of array elements consumed across all intersections
    /// (a proxy for comparison work).
    pub elements_scanned: u64,
    /// Invocations [`crate::Kernel::Adaptive`] routed to galloping
    /// (skewed neighbor-list pair). Zero for every other kernel.
    pub adaptive_gallop: u64,
    /// Invocations [`crate::Kernel::Adaptive`] routed to the block/pivot
    /// kernel (balanced pair). Zero for every other kernel.
    pub adaptive_block: u64,
    /// `(len_a, len_b)` pairs the autotuner sampled while building its
    /// plan (zero unless [`crate::Kernel::Autotuned`] ran).
    pub autotune_samples: u64,
    /// Size/skew buckets the autotuner measured and planned a winner for.
    pub autotune_buckets: u64,
    /// Buckets whose measured winner is the merge kernel.
    pub autotune_wins_merge: u64,
    /// Buckets whose measured winner is the galloping kernel.
    pub autotune_wins_gallop: u64,
    /// Buckets whose measured winner is the best block/pivot kernel.
    pub autotune_wins_block: u64,
    /// Buckets whose measured winner is the FESIA hash kernel.
    pub autotune_wins_fesia: u64,
    /// Buckets whose measured winner is the shuffling kernel.
    pub autotune_wins_shuffle: u64,
    /// [`crate::Kernel::Autotuned`] dispatches that hit a bucket with a
    /// measured winner.
    pub autotune_planned: u64,
    /// [`crate::Kernel::Autotuned`] dispatches that fell back to the
    /// adaptive rule (bucket had too few samples to measure).
    pub autotune_fallback: u64,
}

impl CounterSnapshot {
    fn from_array(a: [u64; N]) -> Self {
        CounterSnapshot {
            compsim_invocations: a[IDX_INVOCATIONS],
            elements_scanned: a[IDX_SCANNED],
            adaptive_gallop: a[IDX_ADAPTIVE_GALLOP],
            adaptive_block: a[IDX_ADAPTIVE_BLOCK],
            autotune_samples: a[IDX_AUTOTUNE_SAMPLES],
            autotune_buckets: a[IDX_AUTOTUNE_BUCKETS],
            autotune_wins_merge: a[IDX_AUTOTUNE_WINS_MERGE],
            autotune_wins_gallop: a[IDX_AUTOTUNE_WINS_GALLOP],
            autotune_wins_block: a[IDX_AUTOTUNE_WINS_BLOCK],
            autotune_wins_fesia: a[IDX_AUTOTUNE_WINS_FESIA],
            autotune_wins_shuffle: a[IDX_AUTOTUNE_WINS_SHUFFLE],
            autotune_planned: a[IDX_AUTOTUNE_PLANNED],
            autotune_fallback: a[IDX_AUTOTUNE_FALLBACK],
        }
    }

    fn to_array(self) -> [u64; N] {
        let mut a = [0u64; N];
        a[IDX_INVOCATIONS] = self.compsim_invocations;
        a[IDX_SCANNED] = self.elements_scanned;
        a[IDX_ADAPTIVE_GALLOP] = self.adaptive_gallop;
        a[IDX_ADAPTIVE_BLOCK] = self.adaptive_block;
        a[IDX_AUTOTUNE_SAMPLES] = self.autotune_samples;
        a[IDX_AUTOTUNE_BUCKETS] = self.autotune_buckets;
        a[IDX_AUTOTUNE_WINS_MERGE] = self.autotune_wins_merge;
        a[IDX_AUTOTUNE_WINS_GALLOP] = self.autotune_wins_gallop;
        a[IDX_AUTOTUNE_WINS_BLOCK] = self.autotune_wins_block;
        a[IDX_AUTOTUNE_WINS_FESIA] = self.autotune_wins_fesia;
        a[IDX_AUTOTUNE_WINS_SHUFFLE] = self.autotune_wins_shuffle;
        a[IDX_AUTOTUNE_PLANNED] = self.autotune_planned;
        a[IDX_AUTOTUNE_FALLBACK] = self.autotune_fallback;
        a
    }

    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let (now, then) = (self.to_array(), earlier.to_array());
        CounterSnapshot::from_array(std::array::from_fn(|i| now[i] - then[i]))
    }
}

/// An isolated counter accumulator. Cloning shares the accumulator
/// (handles are `Arc`-backed); distinct `new()` scopes never interfere,
/// across threads or within one.
#[derive(Clone, Default)]
pub struct CounterScope {
    inner: Arc<ScopeInner>,
}

impl CounterScope {
    /// Fresh scope with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activates the scope on the **current thread** until the guard
    /// drops: `record_*` calls on this thread accumulate into it.
    /// Re-activating an already-active scope is a no-op (no double
    /// counting).
    pub fn activate(&self) -> AttachGuard {
        ActiveScopes {
            scopes: vec![self.inner.clone()],
        }
        .attach()
    }

    /// Current totals of this scope. If the scope is active on the
    /// *calling* thread, the still-open window since its activation here
    /// is folded in, so snapshots taken before the guard drops are
    /// accurate. Windows open on *other* threads only land when their
    /// guards drop (i.e. when those workers finish).
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut totals: [u64; N] =
            std::array::from_fn(|i| self.inner.counts[i].load(Ordering::Relaxed));
        let now = local_counts();
        ACTIVE.with(|a| {
            if let Some(e) = a
                .borrow()
                .iter()
                .find(|e| Arc::ptr_eq(&e.scope, &self.inner))
            {
                for i in 0..N {
                    totals[i] += now[i] - e.base[i];
                }
            }
        });
        CounterSnapshot::from_array(totals)
    }

    /// Runs `f` with the scope active on the current thread and returns
    /// the counter delta it produced alongside `f`'s result. Parallel
    /// callees must still [`inherit`]/[`ActiveScopes::attach`] to carry
    /// the scope onto their worker threads.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (CounterSnapshot, R) {
        let before = self.snapshot();
        let guard = self.activate();
        let out = f();
        drop(guard);
        (self.snapshot().since(&before), out)
    }
}

impl std::fmt::Debug for CounterScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterScope")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// The set of scopes active on the capturing thread; send it into worker
/// threads and [`attach`](ActiveScopes::attach) there.
#[derive(Clone, Default)]
pub struct ActiveScopes {
    scopes: Vec<Arc<ScopeInner>>,
}

/// Registers counter-scope propagation with the `ppscan_obs` context
/// registry (once per process). After this, `ppscan_sched::WorkerPool`
/// carries active scopes onto its worker threads automatically.
/// Invoked from every activation path so any code that *uses* scopes
/// also propagates them; calling it eagerly is also fine.
pub fn ensure_propagator() {
    static REGISTER: Once = Once::new();
    REGISTER.call_once(|| {
        ppscan_obs::propagate::register(Arc::new(CountersPropagator));
    });
}

struct CountersPropagator;

impl ppscan_obs::propagate::Propagator for CountersPropagator {
    fn capture(&self) -> Box<dyn ppscan_obs::propagate::CapturedSlot> {
        Box::new(inherit())
    }
}

impl ppscan_obs::propagate::CapturedSlot for ActiveScopes {
    fn attach(&self) -> Box<dyn std::any::Any> {
        Box::new(ActiveScopes::attach(self))
    }
}

/// Captures the scopes currently active on this thread (cheap: one Arc
/// clone per active scope, usually zero or one).
pub fn inherit() -> ActiveScopes {
    ACTIVE.with(|a| ActiveScopes {
        scopes: a.borrow().iter().map(|e| e.scope.clone()).collect(),
    })
}

impl ActiveScopes {
    /// Activates the captured scopes on the current thread until the
    /// guard drops. Scopes already active here are skipped (pointer
    /// identity), so attaching on the capturing thread itself — e.g. when
    /// a "worker" task runs inline under the sequential strategy — does
    /// not double-count.
    pub fn attach(&self) -> AttachGuard {
        ensure_propagator();
        let base = local_counts();
        let pushed = ACTIVE.with(|a| {
            let mut stack = a.borrow_mut();
            let mut pushed = 0;
            for s in &self.scopes {
                if !stack.iter().any(|e| Arc::ptr_eq(&e.scope, s)) {
                    stack.push(ActiveEntry {
                        scope: s.clone(),
                        base,
                    });
                    pushed += 1;
                }
            }
            pushed
        });
        AttachGuard { pushed }
    }
}

/// RAII guard deactivating what [`ActiveScopes::attach`] /
/// [`CounterScope::activate`] activated; on drop it charges the
/// thread-local counts accumulated during its window to the scopes it
/// pushed.
#[must_use = "dropping the guard immediately deactivates the scope"]
pub struct AttachGuard {
    pushed: usize,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        let now = local_counts();
        ACTIVE.with(|a| {
            let mut stack = a.borrow_mut();
            for _ in 0..self.pushed {
                let e = stack.pop().expect("guard outlived its stack entries");
                for (i, slot) in e.scope.counts.iter().enumerate() {
                    slot.fetch_add(now[i] - e.base[i], Ordering::Relaxed);
                }
            }
        });
    }
}

/// Adds `n` to one thread-local slot.
#[inline]
fn bump(idx: usize, n: u64) {
    LOCAL.with(|l| l[idx].set(l[idx].get() + n));
}

/// Records one `CompSim` invocation. Called by every kernel entry point;
/// compiles to a single thread-local increment.
#[inline]
pub fn record_invocation() {
    bump(IDX_INVOCATIONS, 1);
}

/// Records `n` scanned elements. Kernels batch this per call, not per
/// element, to keep the hot loop clean.
#[inline]
pub fn record_scanned(n: u64) {
    bump(IDX_SCANNED, n);
}

/// Records one `CompSim` invocation together with its scanned-element
/// count in a single thread-local access. The block kernels call this
/// once at each exit instead of paying two `LOCAL.with` round trips per
/// invocation.
#[inline]
pub fn record_invocation_scanned(n: u64) {
    LOCAL.with(|l| {
        l[IDX_INVOCATIONS].set(l[IDX_INVOCATIONS].get() + 1);
        l[IDX_SCANNED].set(l[IDX_SCANNED].get() + n);
    });
}

/// Records one [`crate::Kernel::Adaptive`] dispatch decision: `gallop`
/// says which branch the degree-ratio test picked. The mix lets
/// `fig4_invocations` and the ablations report how often the skew
/// heuristic fires on each dataset.
#[inline]
pub fn record_adaptive_choice(gallop: bool) {
    bump(
        if gallop {
            IDX_ADAPTIVE_GALLOP
        } else {
            IDX_ADAPTIVE_BLOCK
        },
        1,
    );
}

/// Records one [`crate::Kernel::Autotuned`] dispatch decision: `planned`
/// says whether the call's size/skew bucket had a measured winner
/// (versus falling back to the adaptive rule). The mix is the report's
/// evidence of how much of the workload the measured plan covers.
#[inline]
pub fn record_autotune_dispatch(planned: bool) {
    bump(
        if planned {
            IDX_AUTOTUNE_PLANNED
        } else {
            IDX_AUTOTUNE_FALLBACK
        },
        1,
    );
}

/// Records an autotune plan's build-time summary — sample count, planned
/// bucket count, and the per-kernel-family bucket win mix — into the
/// scopes active on the calling thread. Drivers call this once per run
/// *inside* their counter scope (plan measurement itself runs outside
/// any scope so the timing calls don't pollute `compsim_invocations`).
pub fn record_autotune_plan(stats: &crate::autotune::PlanStats) {
    LOCAL.with(|l| {
        let add = |idx: usize, n: u64| l[idx].set(l[idx].get() + n);
        add(IDX_AUTOTUNE_SAMPLES, stats.samples);
        add(IDX_AUTOTUNE_BUCKETS, stats.buckets);
        add(IDX_AUTOTUNE_WINS_MERGE, stats.wins_merge);
        add(IDX_AUTOTUNE_WINS_GALLOP, stats.wins_gallop);
        add(IDX_AUTOTUNE_WINS_BLOCK, stats.wins_block);
        add(IDX_AUTOTUNE_WINS_FESIA, stats.wins_fesia);
        add(IDX_AUTOTUNE_WINS_SHUFFLE, stats.wins_shuffle);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            record_invocation();
            record_invocation();
            record_scanned(10);
            record_scanned(0); // no-op
        });
        assert_eq!(d.compsim_invocations, 2);
        assert_eq!(d.elements_scanned, 10);
    }

    #[test]
    fn adaptive_choice_mix_is_scoped() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            record_adaptive_choice(true);
            record_adaptive_choice(false);
            record_adaptive_choice(false);
        });
        assert_eq!(d.adaptive_gallop, 1);
        assert_eq!(d.adaptive_block, 2);
        assert_eq!(d.compsim_invocations, 0);
    }

    #[test]
    fn autotune_counters_are_scoped() {
        let scope = CounterScope::new();
        let stats = crate::autotune::PlanStats {
            samples: 40,
            buckets: 5,
            wins_merge: 1,
            wins_gallop: 0,
            wins_block: 2,
            wins_fesia: 1,
            wins_shuffle: 1,
        };
        let (d, ()) = scope.measure(|| {
            record_autotune_plan(&stats);
            record_autotune_dispatch(true);
            record_autotune_dispatch(true);
            record_autotune_dispatch(false);
        });
        assert_eq!(d.autotune_samples, 40);
        assert_eq!(d.autotune_buckets, 5);
        assert_eq!(d.autotune_wins_merge, 1);
        assert_eq!(d.autotune_wins_block, 2);
        assert_eq!(d.autotune_wins_fesia, 1);
        assert_eq!(d.autotune_wins_shuffle, 1);
        assert_eq!(d.autotune_planned, 2);
        assert_eq!(d.autotune_fallback, 1);
        assert_eq!(d.compsim_invocations, 0);
    }

    #[test]
    fn recording_without_scope_is_a_noop() {
        let scope = CounterScope::new();
        record_invocation(); // no scope active: goes nowhere
        assert_eq!(scope.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn nested_scopes_both_record() {
        let outer = CounterScope::new();
        let inner = CounterScope::new();
        let (od, _) = outer.measure(|| {
            record_invocation();
            let (id, ()) = inner.measure(record_invocation);
            assert_eq!(id.compsim_invocations, 1);
        });
        assert_eq!(od.compsim_invocations, 2, "outer sees nested work too");
    }

    #[test]
    fn snapshot_sees_unflushed_counts_on_current_thread() {
        // Drivers snapshot while their own activation guard is still
        // alive; the open window must be visible despite deferred
        // attribution.
        let scope = CounterScope::new();
        let _g = scope.activate();
        record_invocation();
        record_scanned(5);
        let snap = scope.snapshot();
        assert_eq!(snap.compsim_invocations, 1);
        assert_eq!(snap.elements_scanned, 5);
    }

    #[test]
    fn reactivating_active_scope_does_not_double_count() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            let _again = scope.activate();
            record_invocation();
        });
        assert_eq!(d.compsim_invocations, 1);
    }

    #[test]
    fn scopes_are_isolated_across_threads() {
        // Property test (satellite): per-thread scopes with interleaved
        // recording never observe each other's counts.
        let scopes: Vec<CounterScope> = (0..4).map(|_| CounterScope::new()).collect();
        std::thread::scope(|s| {
            for (i, scope) in scopes.iter().enumerate() {
                s.spawn(move || {
                    let _g = scope.activate();
                    for _ in 0..=i {
                        record_invocation();
                        record_scanned(7);
                    }
                });
            }
        });
        for (i, scope) in scopes.iter().enumerate() {
            let snap = scope.snapshot();
            assert_eq!(snap.compsim_invocations, i as u64 + 1, "scope {i}");
            assert_eq!(snap.elements_scanned, 7 * (i as u64 + 1), "scope {i}");
        }
    }

    #[test]
    fn inherit_attach_carries_scope_to_worker() {
        let scope = CounterScope::new();
        let (d, ()) = scope.measure(|| {
            let scopes = inherit();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = scopes.attach();
                    record_invocation();
                    record_scanned(3);
                });
                s.spawn(|| {
                    // No attach: this worker's records go nowhere.
                    record_invocation();
                });
            });
        });
        assert_eq!(d.compsim_invocations, 1);
        assert_eq!(d.elements_scanned, 3);
    }
}
