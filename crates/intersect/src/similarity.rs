//! Structural-similarity arithmetic: the per-edge similarity label
//! (Definition 2.12), the exact integer threshold
//! `min_cn = ⌈ε·√((d[u]+1)(d[v]+1))⌉` (Definition 2.2), and the
//! degree-only *similarity predicate pruning* rules (§3.2.2).
//!
//! # Exactness
//!
//! Comparing `cn ≥ ε·√(prod)` in floating point invites off-by-one
//! misclassification at threshold boundaries (and those boundaries are
//! common: with small integer degrees the two sides are often exactly
//! equal). Like the reference pSCAN implementation, we represent ε as an
//! exact rational `num/den` and evaluate the predicate purely in integer
//! arithmetic: `cn` is similar iff `cn²·den² ≥ num²·prod`.

/// Per-edge similarity label (paper Definition 2.12 plus the `Unknown`
/// state the multi-phase algorithms use). The `u8` representation is
/// shared with the atomic edge-label array in `ppscan-core`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Similarity {
    /// Not yet computed.
    #[default]
    Unknown = 0,
    /// σ_ε(u, v) holds.
    Sim = 1,
    /// σ_ε(u, v) does not hold.
    NSim = 2,
}

impl Similarity {
    /// Decodes the `u8` representation; panics on an invalid encoding.
    #[inline]
    pub fn from_u8(x: u8) -> Similarity {
        match x {
            0 => Similarity::Unknown,
            1 => Similarity::Sim,
            2 => Similarity::NSim,
            _ => panic!("invalid Similarity encoding {x}"),
        }
    }

    /// Whether the label is decided (not `Unknown`).
    #[inline]
    pub fn is_known(self) -> bool {
        self != Similarity::Unknown
    }
}

/// Exact-threshold calculator for a fixed ε.
///
/// ε is snapped to a rational with denominator 10⁴ (the paper sweeps ε in
/// steps of 0.1, so this is lossless for every value the evaluation uses)
/// and all predicates are evaluated in `u128` integer arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpsilonThreshold {
    num: u64,
    den: u64,
}

impl EpsilonThreshold {
    /// Creates the calculator for `eps ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `eps` is outside `(0, 1]` (the paper's parameter domain).
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps <= 1.0,
            "epsilon must be in (0, 1], got {eps}"
        );
        let den = 10_000u64;
        let num = (eps * den as f64).round() as u64;
        Self {
            num: num.max(1),
            den,
        }
    }

    /// Creates the calculator from an exact rational ε = num/den.
    pub fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den > 0 && num > 0 && num <= den, "need 0 < num/den <= 1");
        Self { num, den }
    }

    /// ε as f64 (for display).
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The smallest integer `k` with `k ≥ ε·√((d_u+1)(d_v+1))`, i.e. the
    /// paper's `⌈ε·√((d[u]+1)(d[v]+1))⌉`, computed exactly.
    ///
    /// An edge is similar iff `|Γ(u) ∩ Γ(v)| ≥ min_cn(d_u, d_v)`.
    pub fn min_cn(&self, d_u: usize, d_v: usize) -> u64 {
        // k ≥ (num/den)·√prod  ⟺  k·den ≥ √(num²·prod)
        //                      ⟺  k·den ≥ ceil_sqrt(num²·prod)
        //
        // This runs once per `CompSim` invocation and once per edge in
        // the pruning phase, so the common case stays in u64: whenever
        // `num²·prod < 2⁵²` (every graph with the default den = 10⁴ and
        // degrees up to ~6·10³) the square root is exact in hardware f64
        // and no u128 multiply/divide chain is needed.
        let q = (d_u as u64 + 1).checked_mul(d_v as u64 + 1);
        if let Some(prod) = q
            .and_then(|q| {
                self.num
                    .checked_mul(self.num)
                    .and_then(|n2| n2.checked_mul(q))
            })
            .filter(|&p| p < (1 << 52))
        {
            let t = ceil_sqrt_u64(prod);
            return t.div_ceil(self.den);
        }
        let prod = (self.num as u128) * (self.num as u128) * (d_u as u128 + 1) * (d_v as u128 + 1);
        let t = ceil_sqrt_u128(prod);
        t.div_ceil(self.den as u128) as u64
    }

    /// Degree-only similarity predicate pruning (§3.2.2): decides the
    /// label of edge `(u, v)` without any intersection when possible.
    ///
    /// * `NSim` when even a full overlap cannot reach the threshold
    ///   (`d+2 < min_cn` for either endpoint),
    /// * `Sim` when `{u, v}` alone already meets it (`2 ≥ min_cn`),
    /// * `Unknown` otherwise.
    pub fn prune_by_degree(&self, d_u: usize, d_v: usize) -> Similarity {
        // Both rules compare `min_cn` against a known integer `k`, and
        //   min_cn ≤ k  ⟺  ceil_sqrt(num²·prod) ≤ k·den  ⟺  num²·prod ≤ (k·den)²
        // so the whole decision needs only multiplications — no square
        // root or division. This runs once per directed edge in the
        // pruning phase, where the saved ~10ns per call is measurable.
        let lhs = (self.num as u128) * (self.num as u128) * (d_u as u128 + 1) * (d_v as u128 + 1);
        let den = self.den as u128;
        // NSim ⟺ dmin + 2 < min_cn (only the smaller degree can bind).
        let cap = (d_u.min(d_v) as u128 + 2) * den;
        if lhs > cap * cap {
            Similarity::NSim
        } else if lhs <= 4 * den * den {
            // Sim ⟺ min_cn ≤ 2.
            Similarity::Sim
        } else {
            Similarity::Unknown
        }
    }

    /// Evaluates the full similarity predicate given an exact intersection
    /// size `|Γ(u) ∩ Γ(v)|` (for testing and the naive reference path).
    pub fn is_similar(&self, gamma_cap: u64, d_u: usize, d_v: usize) -> bool {
        gamma_cap >= self.min_cn(d_u, d_v)
    }

    /// Exact predicate `cn / √denom ≥ ε` for a precomputed similarity
    /// value (`cn = |Γ(u) ∩ Γ(v)|`, `denom = (d[u]+1)(d[v]+1)`), used by
    /// the GS*-Index query path: `cn²·den² ≥ num²·denom`.
    pub fn sim_at_least(&self, cn: u64, denom: u128) -> bool {
        let lhs = (cn as u128) * (cn as u128) * (self.den as u128) * (self.den as u128);
        let rhs = (self.num as u128) * (self.num as u128) * denom;
        lhs >= rhs
    }
}

/// Smallest integer `t ≥ 0` with `t² ≥ x`, exact for `x < 2⁵²` (where
/// the f64 mantissa represents `x` losslessly, so the hardware root is
/// within one unit of the true value before the fixup).
fn ceil_sqrt_u64(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut t = (x as f64).sqrt() as u64;
    while t > 0 && t * t >= x {
        t -= 1;
    }
    // Now t² < x (or t == 0 < x); advance to the first t with t² ≥ x.
    t += 1;
    while t * t < x {
        t += 1;
    }
    t
}

/// Smallest integer `t ≥ 0` with `t² ≥ x`, exact for all `u128` inputs
/// that arise here (num ≤ 10⁴, degrees < 2³²  ⇒  x < 2¹⁰⁸).
fn ceil_sqrt_u128(x: u128) -> u128 {
    if x == 0 {
        return 0;
    }
    // f64 sqrt gives ~52 significant bits; fix up by scanning ±2.
    let mut t = (x as f64).sqrt() as u128;
    while t.checked_mul(t).is_none_or(|sq| sq >= x) {
        if t == 0 {
            return 0;
        }
        t -= 1;
    }
    // Now t² < x; advance to the first t with t² ≥ x.
    t += 1;
    while t.checked_mul(t).is_some_and(|sq| sq < x) {
        t += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_sqrt_exact_small() {
        assert_eq!(ceil_sqrt_u128(0), 0);
        assert_eq!(ceil_sqrt_u128(1), 1);
        assert_eq!(ceil_sqrt_u128(2), 2);
        assert_eq!(ceil_sqrt_u128(4), 2);
        assert_eq!(ceil_sqrt_u128(5), 3);
        assert_eq!(ceil_sqrt_u128(9), 3);
        assert_eq!(ceil_sqrt_u128(10), 4);
    }

    #[test]
    fn ceil_sqrt_exact_around_squares() {
        for v in [3u128, 17, 1000, 123_456_789, 1 << 40] {
            let sq = v * v;
            assert_eq!(ceil_sqrt_u128(sq), v);
            assert_eq!(ceil_sqrt_u128(sq - 1), v);
            assert_eq!(ceil_sqrt_u128(sq + 1), v + 1);
        }
    }

    #[test]
    fn min_cn_matches_definition() {
        // ε = 0.5, d_u = d_v = 3: ⌈0.5·√16⌉ = 2.
        assert_eq!(EpsilonThreshold::new(0.5).min_cn(3, 3), 2);
        // ε = 0.6, d_u = 4, d_v = 4: ⌈0.6·5⌉ = 3.
        assert_eq!(EpsilonThreshold::new(0.6).min_cn(4, 4), 3);
        // Exact boundary: ε = 0.6, prod = 25, 0.6·5 = 3 exactly → 3, not 4.
        assert_eq!(EpsilonThreshold::new(0.6).min_cn(4, 4), 3);
        // ε = 1.0: ⌈√((d+1)(d+1))⌉ = d+1, full overlap required.
        assert_eq!(EpsilonThreshold::new(1.0).min_cn(7, 7), 8);
    }

    #[test]
    fn min_cn_agrees_with_f64_away_from_boundaries() {
        for &eps in &[0.1, 0.2, 0.35, 0.5, 0.73, 0.9] {
            let t = EpsilonThreshold::new(eps);
            for d_u in 0..40usize {
                for d_v in 0..40usize {
                    let exact = t.min_cn(d_u, d_v);
                    let float = (eps * (((d_u + 1) * (d_v + 1)) as f64).sqrt()).ceil() as u64;
                    // Allow the float version to be off by one only at an
                    // exact boundary.
                    assert!(
                        exact == float || (exact + 1 == float) || (float + 1 == exact),
                        "eps={eps} d=({d_u},{d_v}): exact={exact} float={float}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_rules() {
        let t = EpsilonThreshold::new(0.9);
        // Huge degree imbalance: a degree-1 vertex cannot be similar to a
        // degree-1000 vertex at ε = 0.9 (min_cn ≈ 40 > 3).
        assert_eq!(t.prune_by_degree(1, 1000), Similarity::NSim);
        // Tiny ε: two degree-1 endpoints are trivially similar.
        let t = EpsilonThreshold::new(0.1);
        assert_eq!(t.prune_by_degree(1, 1), Similarity::Sim);
        // In-between case stays unknown.
        let t = EpsilonThreshold::new(0.5);
        assert_eq!(t.prune_by_degree(10, 10), Similarity::Unknown);
    }

    #[test]
    fn prune_consistent_with_min_cn() {
        for &eps in &[0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let t = EpsilonThreshold::new(eps);
            for d_u in 0..30usize {
                for d_v in 0..30usize {
                    let mc = t.min_cn(d_u, d_v);
                    match t.prune_by_degree(d_u, d_v) {
                        Similarity::Sim => assert!(mc <= 2),
                        Similarity::NSim => {
                            assert!((d_u as u64 + 2) < mc || (d_v as u64 + 2) < mc)
                        }
                        Similarity::Unknown => {
                            assert!(mc > 2 && (d_u as u64 + 2) >= mc && (d_v as u64 + 2) >= mc)
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn epsilon_one_requires_identical_closed_neighborhoods() {
        let t = EpsilonThreshold::new(1.0);
        // d_u = d_v = d: min_cn = d+1 = |Γ|, i.e. Γ(u) = Γ(v).
        for d in 0..20usize {
            assert_eq!(t.min_cn(d, d), d as u64 + 1);
        }
        // Different degrees at ε = 1: strictly more than the smaller closed
        // neighborhood, impossible → NSim by degree pruning.
        assert_eq!(t.prune_by_degree(3, 30), Similarity::NSim);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn rejects_zero_epsilon() {
        EpsilonThreshold::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn rejects_oversized_epsilon() {
        EpsilonThreshold::new(1.2);
    }

    #[test]
    fn from_ratio_exact() {
        let a = EpsilonThreshold::from_ratio(1, 3);
        // min_cn(2, 2) = smallest k with 9k² ≥ 9 → 1.
        assert_eq!(a.min_cn(2, 2), 1);
        // √((3+1)(5+1)) = √24 ≈ 4.899; /3 → ⌈1.633⌉ = 2.
        assert_eq!(a.min_cn(3, 5), 2);
    }

    #[test]
    fn similarity_u8_roundtrip() {
        for s in [Similarity::Unknown, Similarity::Sim, Similarity::NSim] {
            assert_eq!(Similarity::from_u8(s as u8), s);
        }
        assert!(!Similarity::Unknown.is_known());
        assert!(Similarity::Sim.is_known());
    }

    #[test]
    #[should_panic(expected = "invalid Similarity")]
    fn similarity_rejects_bad_encoding() {
        Similarity::from_u8(3);
    }
}
