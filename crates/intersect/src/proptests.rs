//! Randomized differential tests: every kernel must agree with the
//! exhaustive reference (`merge::check_reference`) on arbitrary sorted
//! inputs and thresholds, including the early-termination paths the
//! random inputs exercise from both directions.
//!
//! Formerly `proptest`-based; now driven by a seeded SplitMix64 loop so
//! the crate builds with no external dependencies (the crate is a leaf —
//! it cannot borrow `ppscan_graph::rng` — so the mixer is duplicated
//! here, constants and all; see `ppscan-graph/src/rng.rs` for provenance).

use crate::kernel::Kernel;
use crate::merge;
use crate::similarity::EpsilonThreshold;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Sorted, deduplicated vector of ids below 2³¹ with skew toward small
/// values (forcing dense overlaps) and occasional huge gaps (forcing long
/// pivot runs — the SIMD fast path).
fn sorted_ids(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let len = rng.index(max_len + 1);
    let mut v: Vec<u32> = (0..len)
        .map(|_| match rng.index(3) {
            0 => rng.index(64) as u32,                // dense region: many matches
            1 => rng.index(4096) as u32,              // medium
            _ => rng.index(i32::MAX as usize) as u32, // sparse region: long runs
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn kernels_agree_with_reference() {
    for seed in 0..256u64 {
        let mut rng = Rng(0x15ec_0000 ^ seed);
        let a = sorted_ids(&mut rng, 120);
        let b = sorted_ids(&mut rng, 120);
        let min_cn = rng.index(80) as u64;
        let expected = if min_cn <= 2 {
            crate::Similarity::Sim
        } else {
            merge::check_reference(&a, &b, min_cn)
        };
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            assert_eq!(
                k.check(&a, &b, min_cn),
                expected,
                "kernel {k} seed {seed} a={a:?} b={b:?} min_cn={min_cn}"
            );
        }
    }
}

#[test]
fn kernels_symmetric() {
    for seed in 0..256u64 {
        let mut rng = Rng(0x51ab_0000 ^ seed);
        let a = sorted_ids(&mut rng, 100);
        let b = sorted_ids(&mut rng, 100);
        let min_cn = 3 + rng.index(37) as u64;
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            assert_eq!(
                k.check(&a, &b, min_cn),
                k.check(&b, &a, min_cn),
                "kernel {k} not symmetric at seed {seed}"
            );
        }
    }
}

/// Adversarial input family for the new-kernel differential tests:
/// empty, disjoint, fully-overlapping, near-`i32::MAX` ids (pinning the
/// SIMD dead-lane sentinel contract), and a seeded skew grid.
fn adversarial_pairs() -> Vec<(Vec<u32>, Vec<u32>)> {
    let top = i32::MAX as u32;
    let mut pairs: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![], vec![]),
        (vec![], (0..40).collect()),
        (
            (0..33).map(|x| x * 2).collect(),
            (0..33).map(|x| x * 2 + 1).collect(),
        ),
        ((0..50).collect(), (0..50).collect()),
        (
            (0..17).map(|k| top - 16 + k).collect(),
            (0..17).map(|k| top - 16 + k).collect(),
        ),
        (
            (0..40).map(|k| top - 2 * (39 - k)).collect(),
            (0..40).map(|k| top - 3 * (39 - k)).collect(),
        ),
        (vec![0], vec![0]),
        (vec![0, top], vec![0, top]),
    ];
    // Seeded skew grid: short lists against 1×/8×/64× longer ones.
    for seed in 0..24u64 {
        let mut rng = Rng(0xfe51a ^ (seed << 8));
        let short = sorted_ids(&mut rng, 24);
        for skew in [1usize, 8, 64] {
            let long = sorted_ids(&mut rng, 24 * skew);
            pairs.push((short.clone(), long));
        }
    }
    pairs
}

#[test]
fn new_kernels_agree_with_merge_oracle_at_every_min_cn() {
    use crate::autotune::KernelPrecomp;
    use crate::kernel::PrecompCtx;

    for (a, b) in adversarial_pairs() {
        // A real FESIA precomp over exactly this pair's adjacency, so
        // the precomputed path is exercised next to the flat one.
        let adj = [a.clone(), b.clone()];
        let avg = (a.len() + b.len()) as f64 / 2.0;
        let fesia = crate::fesia::FesiaPrecomp::build(2, avg, |u| &adj[u as usize]);
        let pre = KernelPrecomp::new(Some(fesia), None);
        let ctx = PrecompCtx::new(&pre, 0, 1);
        // Early-termination equivalence at *every* reachable min_cn.
        for min_cn in 0..=(a.len() + b.len() + 3) as u64 {
            let expected = if min_cn <= 2 {
                crate::Similarity::Sim
            } else {
                merge::check_reference(&a, &b, min_cn)
            };
            for k in [Kernel::Fesia, Kernel::Shuffling, Kernel::Autotuned] {
                assert_eq!(
                    k.check(&a, &b, min_cn),
                    expected,
                    "kernel {k} (no ctx) |a|={} |b|={} min_cn={min_cn}",
                    a.len(),
                    b.len()
                );
                assert_eq!(
                    k.check_pre(ctx, &a, &b, min_cn),
                    expected,
                    "kernel {k} (precomp) |a|={} |b|={} min_cn={min_cn}",
                    a.len(),
                    b.len()
                );
            }
        }
    }
}

#[test]
fn autotuned_with_measured_plan_agrees_with_oracle() {
    use crate::autotune::{AutotuneConfig, AutotunePlan, KernelPrecomp, SamplePair};
    use crate::kernel::PrecompCtx;

    let pairs = adversarial_pairs();
    let samples: Vec<SamplePair<'_>> = pairs
        .iter()
        .map(|(a, b)| SamplePair {
            u: 0,
            v: 1,
            a,
            b,
            min_cn: (a.len().min(b.len()) as u64 / 2).max(3),
        })
        .collect();
    let plan = AutotunePlan::measure(&samples, None, &AutotuneConfig::default());
    let pre = KernelPrecomp::new(None, Some(plan));
    let ctx = PrecompCtx::new(&pre, 0, 1);
    for (a, b) in &pairs {
        for min_cn in [0u64, 3, 5, 9, 17, 1000] {
            let expected = if min_cn <= 2 {
                crate::Similarity::Sim
            } else {
                merge::check_reference(a, b, min_cn)
            };
            assert_eq!(
                Kernel::Autotuned.check_pre(ctx, a, b, min_cn),
                expected,
                "|a|={} |b|={} min_cn={min_cn}",
                a.len(),
                b.len()
            );
        }
    }
}

#[test]
fn min_cn_is_exact_threshold() {
    for seed in 0..256u64 {
        let mut rng = Rng(0x3d0c_0000 ^ seed);
        let eps_permille = 1 + rng.index(1000) as u64;
        let d_u = rng.index(200);
        let d_v = rng.index(200);
        let t = EpsilonThreshold::from_ratio(eps_permille, 1000);
        let k = t.min_cn(d_u, d_v);
        let prod = (eps_permille as u128).pow(2) * (d_u as u128 + 1) * (d_v as u128 + 1);
        // k is the threshold: k²·10⁶ ≥ ε²-numerator·prod …
        assert!((k as u128 * k as u128) * 1_000_000 >= prod, "seed {seed}");
        // … and k-1 is below it.
        if k > 0 {
            let km1 = (k - 1) as u128;
            assert!(km1 * km1 * 1_000_000 < prod, "seed {seed}");
        }
    }
}

#[test]
fn prune_by_degree_never_contradicts_full_computation() {
    for seed in 0..256u64 {
        let mut rng = Rng(0xd269_0000 ^ seed);
        let a = sorted_ids(&mut rng, 60);
        let b = sorted_ids(&mut rng, 60);
        let eps_permille = 1 + rng.index(1000) as u64;
        let t = EpsilonThreshold::from_ratio(eps_permille, 1000);
        let (d_u, d_v) = (a.len(), b.len());
        let min_cn = t.min_cn(d_u, d_v);
        let full = merge::count_full(&a, &b) + 2;
        match t.prune_by_degree(d_u, d_v) {
            crate::Similarity::Sim => assert!(full >= min_cn, "seed {seed}"),
            // Degree pruning may only claim NSim when even full overlap
            // cannot reach the threshold.
            crate::Similarity::NSim => assert!(full < min_cn, "seed {seed}"),
            crate::Similarity::Unknown => {}
        }
    }
}
