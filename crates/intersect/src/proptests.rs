//! Property-based differential tests: every kernel must agree with the
//! exhaustive reference (`merge::check_reference`) on arbitrary sorted
//! inputs and thresholds, including the early-termination paths the
//! random inputs exercise from both directions.

use crate::kernel::Kernel;
use crate::merge;
use crate::similarity::EpsilonThreshold;
use proptest::prelude::*;

/// Sorted, deduplicated vector of ids below 2³¹ with skew toward small
/// values (forcing dense overlaps) and occasional huge gaps (forcing long
/// pivot runs — the SIMD fast path).
fn sorted_ids(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            0u32..64,              // dense region: many matches
            0u32..4096,            // medium
            0u32..(i32::MAX as u32) // sparse region: long runs
        ],
        0..max_len,
    )
    .prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernels_agree_with_reference(
        a in sorted_ids(120),
        b in sorted_ids(120),
        min_cn in 0u64..80,
    ) {
        let expected = if min_cn <= 2 {
            crate::Similarity::Sim
        } else {
            merge::check_reference(&a, &b, min_cn)
        };
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            prop_assert_eq!(k.check(&a, &b, min_cn), expected, "kernel {}", k);
        }
    }

    #[test]
    fn kernels_symmetric(
        a in sorted_ids(100),
        b in sorted_ids(100),
        min_cn in 3u64..40,
    ) {
        for k in Kernel::ALL.into_iter().filter(|k| k.available()) {
            prop_assert_eq!(
                k.check(&a, &b, min_cn),
                k.check(&b, &a, min_cn),
                "kernel {} not symmetric", k
            );
        }
    }

    #[test]
    fn min_cn_is_exact_threshold(
        eps_permille in 1u64..=1000,
        d_u in 0usize..200,
        d_v in 0usize..200,
    ) {
        let t = EpsilonThreshold::from_ratio(eps_permille, 1000);
        let k = t.min_cn(d_u, d_v);
        let prod = (eps_permille as u128).pow(2) * (d_u as u128 + 1) * (d_v as u128 + 1);
        // k is the threshold: k²·10⁶ ≥ ε²-numerator·prod …
        prop_assert!((k as u128 * k as u128) * 1_000_000 >= prod);
        // … and k-1 is below it.
        if k > 0 {
            let km1 = (k - 1) as u128;
            prop_assert!(km1 * km1 * 1_000_000 < prod);
        }
    }

    #[test]
    fn prune_by_degree_never_contradicts_full_computation(
        a in sorted_ids(60),
        b in sorted_ids(60),
        eps_permille in 1u64..=1000,
    ) {
        let t = EpsilonThreshold::from_ratio(eps_permille, 1000);
        let (d_u, d_v) = (a.len(), b.len());
        let min_cn = t.min_cn(d_u, d_v);
        let full = merge::count_full(&a, &b) + 2;
        match t.prune_by_degree(d_u, d_v) {
            crate::Similarity::Sim => prop_assert!(full >= min_cn),
            // Degree pruning may only claim NSim when even full overlap
            // cannot reach the threshold.
            crate::Similarity::NSim => prop_assert!(full < min_cn),
            crate::Similarity::Unknown => {}
        }
    }
}
