//! FESIA-style hash-bitmap set intersection (Zhang et al., ICDE 2020).
//!
//! FESIA reorders each set by a hash of its elements and keeps, per set,
//! a small bitmap with one bit per hash bucket. Intersecting two sets
//! then starts with a bitmap AND: only buckets set on *both* sides can
//! contain common elements, and only the (short) bucket segments behind
//! those bits need an element-level compare. On low-selectivity pairs —
//! the common case for `CompSim` on sparse graphs, where two adjacent
//! vertices share a handful of their dozens of neighbors — the bitmap
//! AND rules out most of both arrays without ever touching them.
//!
//! The reordered layout is what makes this a *precomputation* kernel:
//! hashing and grouping a neighbor list costs a sort, so it is done once
//! per graph into a [`FesiaPrecomp`] side structure (threaded through
//! `PpScanConfig` / `GsIndex` build) and reused by every `CompSim` call.
//! Per call, the kernel walks the bitmap **word by word** (64 buckets at
//! a time) and verifies candidate words with an all-pairs compare —
//! scalar for tiny segments, AVX2 rotate-and-compare (the
//! [`crate::simd_block`] idiom) for larger ones. Equal ids always hash
//! to the same bucket and land in the same word, so plain id equality
//! inside a word pair is exact regardless of within-word order.
//!
//! Early termination keeps the Definition 3.9 contract at *word*
//! granularity: after both sides' segments for a word are verified, the
//! unmatched elements of that word are definitively non-common (their
//! matches could only have been in this word), so `du`/`dv` drop by the
//! per-word miss counts and the `Sim`/`NSim` exits stay exact.
//!
//! When no precomp entry is available (vertex untracked, stale after an
//! unrepaired update, or the kernel invoked on raw slices), the
//! [`check_flat`] fallback builds a transient stack bitmap over the
//! smaller side and probes it with the larger — still hash-pruned, no
//! precomputation required, valid on any host.

use crate::counters;
use crate::similarity::Similarity;

/// Smallest per-vertex bitmap: 64 buckets = one `u64` word.
const MIN_LOG2_BUCKETS: u32 = 6;
/// Largest per-vertex bitmap: 1024 buckets = 16 words. Capping keeps the
/// precomp linear in |V| + |E| even for hub-heavy degree distributions.
const MAX_LOG2_BUCKETS: u32 = 10;

/// Hash bucket of id `x`: top bits of a Fibonacci (multiplicative) hash.
/// Multiplying by 2^32/φ spreads consecutive ids — the typical CSR
/// neighborhood shape — across buckets far better than masking low bits.
#[inline]
fn bucket_of(x: u32, log2_buckets: u32) -> u32 {
    x.wrapping_mul(0x9E37_79B1) >> (32 - log2_buckets)
}

/// One vertex's hashed neighborhood: bucket-presence bitmap, per-word
/// segment offsets, and the neighbor ids reordered by bucket.
#[derive(Clone, Debug)]
struct FesiaEntry {
    /// Bit `b` set ⇔ some neighbor hashes to bucket `b`.
    bitmap: Box<[u64]>,
    /// `reordered[word_offsets[w]..word_offsets[w + 1]]` holds the
    /// neighbors hashing into word `w` (buckets `64w..64w+63`), ordered
    /// by (bucket, id). Offsets are per *word*, not per bucket: the
    /// verify step works word-at-a-time, and word granularity keeps the
    /// offsets array 64× smaller.
    word_offsets: Box<[u32]>,
    /// Neighbor ids grouped by hash word.
    reordered: Box<[u32]>,
}

impl FesiaEntry {
    fn build(nbrs: &[u32], log2_buckets: u32) -> FesiaEntry {
        let words = 1usize << (log2_buckets - MIN_LOG2_BUCKETS);
        // Sort by (bucket, id): the bucket in the high half keeps the
        // grouping, the id in the low half keeps segments deterministic.
        let mut keyed: Vec<u64> = nbrs
            .iter()
            .map(|&x| (u64::from(bucket_of(x, log2_buckets)) << 32) | u64::from(x))
            .collect();
        keyed.sort_unstable();
        let mut bitmap = vec![0u64; words].into_boxed_slice();
        let mut word_offsets = vec![0u32; words + 1].into_boxed_slice();
        let mut reordered = vec![0u32; nbrs.len()].into_boxed_slice();
        for (slot, &key) in keyed.iter().enumerate() {
            let bucket = (key >> 32) as u32;
            bitmap[(bucket >> 6) as usize] |= 1u64 << (bucket & 63);
            word_offsets[(bucket >> 6) as usize + 1] += 1;
            reordered[slot] = key as u32;
        }
        for w in 1..=words {
            word_offsets[w] += word_offsets[w - 1];
        }
        FesiaEntry {
            bitmap,
            word_offsets,
            reordered,
        }
    }

    #[inline]
    fn segment(&self, w: usize) -> &[u32] {
        &self.reordered[self.word_offsets[w] as usize..self.word_offsets[w + 1] as usize]
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(&*self.bitmap)
            + std::mem::size_of_val(&*self.word_offsets)
            + std::mem::size_of_val(&*self.reordered)
    }
}

/// Per-graph FESIA precomputation: one [`FesiaEntry`] per vertex, all
/// sharing one bucket count sized from the average degree. Built once at
/// run/index start, carried across rebuilds, and *repaired* per-vertex
/// after graph deltas (only the edit endpoints' adjacencies change).
#[derive(Clone, Debug)]
pub struct FesiaPrecomp {
    log2_buckets: u32,
    entries: Vec<FesiaEntry>,
}

impl FesiaPrecomp {
    /// Builds entries for vertices `0..num_vertices` from `neighbors`
    /// (sorted, strictly increasing adjacency slices — the CSR
    /// contract). The shared bucket count targets ~4 buckets per
    /// average-degree neighbor so segments stay short, clamped to
    /// [64, 1024] buckets.
    pub fn build<'a>(
        num_vertices: usize,
        avg_degree: f64,
        neighbors: impl Fn(u32) -> &'a [u32],
    ) -> FesiaPrecomp {
        let target = (avg_degree * 4.0).clamp(64.0, 1024.0) as u32;
        let log2_buckets = (32 - target.leading_zeros()).clamp(MIN_LOG2_BUCKETS, MAX_LOG2_BUCKETS);
        let entries = (0..num_vertices)
            .map(|u| FesiaEntry::build(neighbors(u as u32), log2_buckets))
            .collect();
        FesiaPrecomp {
            log2_buckets,
            entries,
        }
    }

    /// Rebuilds the entries of `touched` vertices from their *new*
    /// adjacency. The bucket count is kept: it was sized from the
    /// average degree, which a localized delta barely moves, and keeping
    /// it means untouched entries stay valid. This is the `apply_delta`
    /// repair path — O(Σ d(t)·log d(t)) over touched vertices only.
    pub fn repair<'a>(&mut self, touched: &[u32], neighbors: impl Fn(u32) -> &'a [u32]) {
        for &t in touched {
            if let Some(e) = self.entries.get_mut(t as usize) {
                *e = FesiaEntry::build(neighbors(t), self.log2_buckets);
            }
        }
    }

    /// Number of hash buckets shared by every entry.
    pub fn buckets(&self) -> usize {
        1usize << self.log2_buckets
    }

    /// Approximate owned heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(FesiaEntry::heap_bytes)
            .sum::<usize>()
            + self.entries.capacity() * std::mem::size_of::<FesiaEntry>()
    }

    /// The entry for vertex `u`, or `None` if `u` is untracked or the
    /// entry is stale (its element count disagrees with the live
    /// adjacency — e.g. a precomp an update has not repaired). Callers
    /// fall back to [`check_flat`] on `None`.
    #[inline]
    fn entry(&self, u: u32, expected_len: usize) -> Option<&FesiaEntry> {
        let e = self.entries.get(u as usize)?;
        (e.reordered.len() == expected_len).then_some(e)
    }
}

/// Precomputed-path `CompSim`: same contract as
/// [`crate::merge::check_early`], where `a = N(u)` and `b = N(v)`.
/// Falls back to [`check_flat`] when either vertex lacks a usable entry.
pub fn check_pre(
    pre: &FesiaPrecomp,
    u: u32,
    v: u32,
    a: &[u32],
    b: &[u32],
    min_cn: u64,
) -> Similarity {
    if min_cn <= 2 {
        counters::record_invocation();
        return Similarity::Sim;
    }
    let mut du = a.len() as u64 + 2;
    let mut dv = b.len() as u64 + 2;
    if du < min_cn || dv < min_cn {
        counters::record_invocation();
        return Similarity::NSim;
    }
    let (Some(ea), Some(eb)) = (pre.entry(u, a.len()), pre.entry(v, b.len())) else {
        return check_flat(a, b, min_cn);
    };
    let mut cn = 2u64;
    let mut scanned = 0u64;
    for w in 0..ea.bitmap.len() {
        let ca = u64::from(ea.word_offsets[w + 1] - ea.word_offsets[w]);
        let cb = u64::from(eb.word_offsets[w + 1] - eb.word_offsets[w]);
        if ca == 0 && cb == 0 {
            continue;
        }
        let mut m = 0u64;
        if ca != 0 && cb != 0 && (ea.bitmap[w] & eb.bitmap[w]) != 0 {
            m = verify(ea.segment(w), eb.segment(w));
            scanned += ca + cb;
            cn += m;
            if cn >= min_cn {
                counters::record_invocation_scanned(scanned);
                return Similarity::Sim;
            }
        }
        // Word `w` is fully decided: its `ca + cb - 2m` unmatched
        // elements can match nowhere else (equal ids share a word), so
        // the Definition 3.9 upper bounds tighten by the miss counts.
        du -= ca - m;
        dv -= cb - m;
        if du < min_cn || dv < min_cn {
            counters::record_invocation_scanned(scanned);
            return Similarity::NSim;
        }
    }
    counters::record_invocation_scanned(scanned);
    Similarity::NSim
}

/// Exact `|a ∩ b|` via the precomputed entries (no early termination),
/// for index construction. `None` if either entry is missing/stale —
/// the caller falls back to the generic [`crate::count::count`].
pub fn count_pre(pre: &FesiaPrecomp, u: u32, v: u32, a: &[u32], b: &[u32]) -> Option<u64> {
    let ea = pre.entry(u, a.len())?;
    let eb = pre.entry(v, b.len())?;
    let mut total = 0u64;
    let mut scanned = 0u64;
    for w in 0..ea.bitmap.len() {
        if (ea.bitmap[w] & eb.bitmap[w]) != 0 {
            let (sa, sb) = (ea.segment(w), eb.segment(w));
            if !sa.is_empty() && !sb.is_empty() {
                total += verify(sa, sb);
                scanned += (sa.len() + sb.len()) as u64;
            }
        }
    }
    counters::record_scanned(scanned);
    Some(total)
}

/// On-the-fly fallback: hash the smaller side into a transient stack
/// bitmap, probe with the larger side, binary-searching the smaller side
/// only on bitmap hits. Keeps the early-termination contract exactly
/// (per-element `d_large` decrements on definite misses). Works on any
/// host; used when no [`FesiaPrecomp`] entry applies.
pub fn check_flat(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    if min_cn <= 2 {
        counters::record_invocation();
        return Similarity::Sim;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut d_large = large.len() as u64 + 2;
    if (small.len() as u64 + 2) < min_cn || d_large < min_cn {
        counters::record_invocation();
        return Similarity::NSim;
    }
    // ~4 buckets per element, clamped to [64, 4096] bits = at most 64
    // words of stack.
    let target = (small.len() * 4).clamp(64, 4096) as u32;
    let log2 = 32 - (target - 1).leading_zeros();
    let mut bm = [0u64; 64];
    for &x in small {
        let bucket = bucket_of(x, log2);
        bm[(bucket >> 6) as usize] |= 1u64 << (bucket & 63);
    }
    let mut cn = 2u64;
    let mut scanned = small.len() as u64;
    for &y in large {
        scanned += 1;
        let bucket = bucket_of(y, log2);
        if (bm[(bucket >> 6) as usize] >> (bucket & 63)) & 1 != 0 && small.binary_search(&y).is_ok()
        {
            cn += 1;
            if cn >= min_cn {
                counters::record_invocation_scanned(scanned);
                return Similarity::Sim;
            }
        } else {
            d_large -= 1;
            if d_large < min_cn {
                counters::record_invocation_scanned(scanned);
                return Similarity::NSim;
            }
        }
    }
    counters::record_invocation_scanned(scanned);
    Similarity::NSim
}

/// Exact match count between two candidate segments (duplicate-free,
/// equal ids guaranteed to co-reside). Scalar double loop for tiny
/// segments, AVX2 all-pairs rotate-compare otherwise.
#[inline]
fn verify(sa: &[u32], sb: &[u32]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if sa.len() * sb.len() > 16 && crate::simd::avx2_available() {
            // SAFETY: feature checked; loads are mask-guarded.
            return unsafe { verify_avx2(sa, sb) };
        }
    }
    verify_scalar(sa, sb)
}

fn verify_scalar(sa: &[u32], sb: &[u32]) -> u64 {
    sa.iter().map(|x| u64::from(sb.contains(x))).sum()
}

/// Row `r` of the maskload table: `8 - r` leading live lanes.
#[cfg(target_arch = "x86_64")]
static MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: contract — call only after `is_x86_feature_detected!("avx2")`
// (checked by the dispatching wrapper above).
unsafe fn verify_avx2(sa: &[u32], sb: &[u32]) -> u64 {
    use std::arch::x86_64::*;
    const LANES: usize = 8;
    let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    // Dead-lane sentinels above the i32::MAX id ceiling; the two sides
    // differ so dead lanes never match each other either.
    let fill_a = _mm256_set1_epi32(-1);
    let fill_b = _mm256_set1_epi32(-2);
    let mut total = 0u64;
    let mut i = 0usize;
    while i < sa.len() {
        let la = (sa.len() - i).min(LANES);
        // SAFETY: maskload touches only the `la` live lanes, which the
        // length subtraction keeps in bounds; mask rows start at
        // LANES - la ∈ [0, 8].
        let ma = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - la) as *const _);
        let va = _mm256_maskload_epi32(sa.as_ptr().add(i) as *const i32, ma);
        let va = _mm256_blendv_epi8(fill_a, va, ma);
        // Each sa element matches at most one sb element (sets are
        // duplicate-free), so OR-ing hit masks across every sb block and
        // popcounting once per sa block counts each match exactly once.
        let mut hits = _mm256_setzero_si256();
        let mut j = 0usize;
        while j < sb.len() {
            let lb = (sb.len() - j).min(LANES);
            // SAFETY: same mask-guarded load as above.
            let mb = _mm256_loadu_si256(MASKS.as_ptr().add(LANES - lb) as *const _);
            let vb = _mm256_maskload_epi32(sb.as_ptr().add(j) as *const i32, mb);
            let mut vb_rot = _mm256_blendv_epi8(fill_b, vb, mb);
            for _ in 0..LANES {
                hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vb_rot));
                vb_rot = _mm256_permutevar8x32_epi32(vb_rot, rot1);
            }
            j += lb;
        }
        total += (_mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32).count_ones() as u64;
        i += la;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    /// Deterministic adjacency zoo for precomp tests: vertex `u`'s
    /// neighbors are a stride pattern with density varying by `u`.
    fn adjacency(n: u32) -> Vec<Vec<u32>> {
        (0..n)
            .map(|u| {
                let stride = 1 + (u % 5);
                let len = (u % 70) as usize;
                (0..len as u32).map(|k| u / 2 + k * stride).collect()
            })
            .collect()
    }

    fn precomp_for(adj: &[Vec<u32>]) -> FesiaPrecomp {
        let avg = adj.iter().map(Vec::len).sum::<usize>() as f64 / adj.len().max(1) as f64;
        FesiaPrecomp::build(adj.len(), avg, |u| &adj[u as usize])
    }

    #[test]
    fn precomputed_path_agrees_with_merge() {
        let adj = adjacency(80);
        let pre = precomp_for(&adj);
        for u in 0..adj.len() as u32 {
            for v in (u..adj.len() as u32).step_by(7) {
                let (a, b) = (&adj[u as usize], &adj[v as usize]);
                for min_cn in [0u64, 2, 3, 5, 9, 17, 40, 1000] {
                    assert_eq!(
                        check_pre(&pre, u, v, a, b, min_cn),
                        merge::check_early(a, b, min_cn),
                        "u={u} v={v} min_cn={min_cn}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_pre_is_exact() {
        let adj = adjacency(60);
        let pre = precomp_for(&adj);
        for u in 0..adj.len() as u32 {
            for v in (0..adj.len() as u32).step_by(3) {
                let (a, b) = (&adj[u as usize], &adj[v as usize]);
                assert_eq!(
                    count_pre(&pre, u, v, a, b),
                    Some(merge::count_full(a, b)),
                    "u={u} v={v}"
                );
            }
        }
    }

    #[test]
    fn flat_path_agrees_with_merge() {
        let grids: [(&[u32], &[u32]); 5] = [
            (&[], &[]),
            (&[1, 2, 3], &[]),
            (&[0, 5, 9], &[0, 5, 9]),
            (&[1, 3, 5, 7], &[0, 2, 4, 6, 8]),
            (&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[4, 5, 6]),
        ];
        for (a, b) in grids {
            for min_cn in [0u64, 2, 3, 4, 5, 8, 100] {
                assert_eq!(
                    check_flat(a, b, min_cn),
                    merge::check_early(a, b, min_cn),
                    "a={a:?} b={b:?} min_cn={min_cn}"
                );
            }
        }
    }

    #[test]
    fn stale_entry_falls_back_to_flat() {
        let adj = adjacency(20);
        let pre = precomp_for(&adj);
        // Query with a *different* adjacency than the precomp saw: the
        // length mismatch must be detected and answered exactly anyway.
        let fresh: Vec<u32> = (0..40).collect();
        for v in 0..adj.len() as u32 {
            let b = &adj[v as usize];
            for min_cn in [0u64, 3, 8, 30] {
                assert_eq!(
                    check_pre(&pre, 0, v, &fresh, b, min_cn),
                    merge::check_early(&fresh, b, min_cn),
                    "v={v} min_cn={min_cn}"
                );
            }
        }
        assert_eq!(count_pre(&pre, 0, 1, &fresh, &adj[1]), None);
    }

    #[test]
    fn repair_refreshes_touched_entries() {
        let mut adj = adjacency(30);
        let mut pre = precomp_for(&adj);
        // Mutate two vertices' adjacency (same way an edge delta would),
        // repair only them, and check both repaired and untouched paths.
        adj[3] = vec![1, 4, 9, 16, 25];
        adj[7] = (0..33).map(|k| k * 2).collect();
        pre.repair(&[3, 7], |u| &adj[u as usize]);
        for u in 0..adj.len() as u32 {
            for v in 0..adj.len() as u32 {
                let (a, b) = (&adj[u as usize], &adj[v as usize]);
                assert_eq!(
                    count_pre(&pre, u, v, a, b),
                    Some(merge::count_full(a, b)),
                    "u={u} v={v}"
                );
            }
        }
    }

    #[test]
    fn near_id_ceiling_ids_are_exact() {
        // Ids close to i32::MAX pin the SIMD sentinel contract: dead
        // lanes sit *above* the ceiling and must never alias real ids.
        let top = i32::MAX as u32;
        let a: Vec<u32> = (0..40).map(|k| top - 2 * k).rev().collect();
        let b: Vec<u32> = (0..40).map(|k| top - 3 * k).rev().collect();
        for min_cn in [0u64, 2, 3, 10, 16, 100] {
            assert_eq!(
                check_flat(&a, &b, min_cn),
                merge::check_early(&a, &b, min_cn),
                "min_cn={min_cn}"
            );
        }
        assert_eq!(verify(&a, &b), merge::count_full(&a, &b));
    }

    #[test]
    fn verify_matches_scalar_on_segment_shapes() {
        for la in [0usize, 1, 2, 5, 8, 9, 17, 40] {
            for lb in [0usize, 1, 3, 8, 13, 33] {
                let sa: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                let sb: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                assert_eq!(verify(&sa, &sb), verify_scalar(&sa, &sb), "la={la} lb={lb}");
                assert_eq!(verify(&sa, &sb), merge::count_full(&sa, &sb));
            }
        }
    }
}
