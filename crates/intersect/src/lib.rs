//! # ppscan-intersect
//!
//! Set-intersection kernels for structural-similarity computation
//! (`CompSim(u, v)` in the paper), including the paper's contribution:
//! the **pivot-based vectorized set intersection with early termination**
//! (Algorithm 6), in AVX-512, AVX2 and scalar flavours, next to the
//! merge-based kernel pSCAN uses and a galloping kernel for comparison.
//!
//! All similarity kernels share one contract (see [`kernel::Kernel`]):
//! given the two *sorted neighbor arrays* `N(u)` and `N(v)` of an
//! **adjacent** pair and the integer threshold
//! `min_cn = ⌈ε·√((d[u]+1)(d[v]+1))⌉` (Definition 2.2, computed exactly by
//! [`similarity::EpsilonThreshold`]), decide whether
//! `|Γ(u) ∩ Γ(v)| = |N(u) ∩ N(v)| + 2 ≥ min_cn`, terminating early via
//! the intersection-count bounds `du`, `dv`, `cn` of Definition 3.9.
//!
//! The `+ 2` accounts for `u` and `v` themselves: since `(u, v) ∈ E`,
//! `u ∈ Γ(u) ∩ Γ(v)` and `v ∈ Γ(u) ∩ Γ(v)`, while neither appears in the
//! array intersection (no self loops). The bounds start at `cn = 2`,
//! `du = d[u] + 2`, `dv = d[v] + 2` exactly as in the paper.
//!
//! ```
//! use ppscan_intersect::kernel::Kernel;
//! use ppscan_intersect::similarity::{EpsilonThreshold, Similarity};
//!
//! // Two adjacent vertices, each with 3 neighbors, sharing 2 of them.
//! let nu = [1, 5, 9];
//! let nv = [3, 5, 9];
//! let eps = EpsilonThreshold::new(0.5);
//! let min_cn = eps.min_cn(3, 3); // ⌈0.5 · √(4·4)⌉ = 2
//! assert_eq!(min_cn, 2);
//! let sim = Kernel::MergeEarly.check(&nu, &nv, min_cn);
//! assert_eq!(sim, Similarity::Sim); // cn = 2 + 2 = 4 ≥ 2
//! ```

pub mod autotune;
pub mod count;
pub mod counters;
pub mod fesia;
pub mod galloping;
pub mod kernel;
pub mod merge;
pub mod pivot;
pub mod shuffling;
pub mod simd;
pub mod simd_block;
pub mod similarity;

pub use autotune::{AutotuneConfig, AutotunePlan, KernelPrecomp, PlanStats, SamplePair};
pub use kernel::{Kernel, PrecompCtx};
pub use similarity::{EpsilonThreshold, Similarity};

#[cfg(test)]
mod proptests;
