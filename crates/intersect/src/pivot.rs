//! Scalar pivot-based set intersection with early termination — the
//! fallback path of Algorithm 6 ("Fall back to the non-vectorized logic")
//! and the scalar flavour of the paper's pivot idea: repeatedly advance
//! one cursor past the other side's current *pivot* element in a tight
//! run, updating the `du`/`dv` bound once per run rather than once per
//! comparison.

use crate::counters;
use crate::similarity::Similarity;

/// State of an in-flight pivot intersection; shared with the SIMD kernels
/// so their scalar tails resume with the exact bounds they accumulated.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PivotState {
    pub i: usize,
    pub j: usize,
    pub du: u64,
    pub dv: u64,
    pub cn: u64,
}

impl PivotState {
    /// Fresh state for `CompSim` over `N(u) = a`, `N(v) = b`
    /// (Definition 3.9 initial bounds).
    pub(crate) fn new(a: &[u32], b: &[u32]) -> Self {
        Self {
            i: 0,
            j: 0,
            du: a.len() as u64 + 2,
            dv: b.len() as u64 + 2,
            cn: 2,
        }
    }
}

/// Runs the scalar pivot loop from `state` to a decision.
///
/// Invariant on entry (checked in debug builds): `cn < min_cn`,
/// `du ≥ min_cn`, `dv ≥ min_cn` — i.e. the predicate is still undecided.
pub(crate) fn run_from(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
    debug_assert!(s.cn < min_cn && s.du >= min_cn && s.dv >= min_cn);
    let (start_i, start_j) = (s.i, s.j);
    let result = 'decide: loop {
        if s.i >= a.len() || s.j >= b.len() {
            break Similarity::NSim;
        }
        // Advance i through the run of elements below the pivot b[j].
        let pivot = b[s.j];
        let run_start = s.i;
        while s.i < a.len() && a[s.i] < pivot {
            s.i += 1;
        }
        s.du -= (s.i - run_start) as u64;
        if s.du < min_cn {
            break Similarity::NSim;
        }
        if s.i >= a.len() {
            break Similarity::NSim;
        }
        // Advance j through the run below the new pivot a[i].
        let pivot = a[s.i];
        let run_start = s.j;
        while s.j < b.len() && b[s.j] < pivot {
            s.j += 1;
        }
        s.dv -= (s.j - run_start) as u64;
        if s.dv < min_cn {
            break Similarity::NSim;
        }
        if s.j >= b.len() {
            break Similarity::NSim;
        }
        if a[s.i] == b[s.j] {
            s.cn += 1;
            s.i += 1;
            s.j += 1;
            if s.cn >= min_cn {
                break 'decide Similarity::Sim;
            }
        }
    };
    counters::record_scanned((s.i - start_i + s.j - start_j) as u64);
    result
}

/// Scalar pivot-based `CompSim` with early termination; same contract as
/// [`crate::merge::check_early`].
pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    counters::record_invocation();
    if min_cn <= 2 {
        return Similarity::Sim;
    }
    let s = PivotState::new(a, b);
    if s.du < min_cn || s.dv < min_cn {
        return Similarity::NSim;
    }
    run_from(a, b, s, min_cn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    #[test]
    fn agrees_with_merge_on_fixed_cases() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[1]),
            (&[1, 2, 3], &[4, 5, 6]),
            (&[1, 4, 6, 8], &[2, 4, 8, 9]),
            (&[1, 2, 3, 4, 5], &[5]),
            (&[10, 20, 30], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
        ];
        for &(a, b) in cases {
            for min_cn in 0..12u64 {
                assert_eq!(
                    check_early(a, b, min_cn),
                    merge::check_early(a, b, min_cn),
                    "a={a:?} b={b:?} min_cn={min_cn}"
                );
            }
        }
    }

    #[test]
    fn long_runs_terminate_early_on_du() {
        // All of `a` below b[0]; du collapses in the first run.
        let a: Vec<u32> = (0..1000).collect();
        let b = [5000u32, 5001, 5002];
        assert_eq!(check_early(&a, &b, 3), Similarity::NSim);
    }

    #[test]
    fn detects_sim_mid_array() {
        let a: Vec<u32> = (0..64).map(|x| x * 2).collect(); // evens
        let b: Vec<u32> = (0..64).collect(); // 0..63
                                             // |a ∩ b| = 32 (evens < 64), so cn = 34 ≥ 10 → Sim.
        assert_eq!(check_early(&a, &b, 10), Similarity::Sim);
    }
}
