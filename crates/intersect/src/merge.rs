//! Merge-based set intersection — the kernel pSCAN uses (§3.2.2).
//!
//! [`check_early`] walks both sorted arrays in lockstep maintaining the
//! intersection-count bounds of Definition 3.9 and stopping as soon as the
//! similarity predicate is decided. [`count_full`] is the exhaustive
//! variant (what SCAN and SCAN-XP do — no early termination), also used
//! as the test oracle for every other kernel.

use crate::counters;
use crate::similarity::Similarity;

/// Exhaustive merge intersection: returns `|a ∩ b|` for sorted, duplicate
/// free slices. O(|a| + |b|).
pub fn count_full(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut cn) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if x > y {
            j += 1;
        } else {
            cn += 1;
            i += 1;
            j += 1;
        }
    }
    counters::record_scanned((i + j) as u64);
    cn
}

/// Merge intersection with the paper's early-termination bounds.
///
/// `a = N(u)`, `b = N(v)` must be sorted and duplicate free; `min_cn` is
/// the exact threshold from
/// [`crate::similarity::EpsilonThreshold::min_cn`]. Implements
/// `CompSim(u, v)` for an adjacent pair: bounds start at `cn = 2`,
/// `du = |a| + 2`, `dv = |b| + 2` and the function returns
/// [`Similarity::Sim`]/[`Similarity::NSim`] the moment the predicate is
/// decided.
pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    counters::record_invocation();
    if min_cn <= 2 {
        return Similarity::Sim;
    }
    let mut du = a.len() as u64 + 2;
    let mut dv = b.len() as u64 + 2;
    if du < min_cn || dv < min_cn {
        return Similarity::NSim;
    }
    let mut cn = 2u64;
    let (mut i, mut j) = (0usize, 0usize);
    let result = loop {
        if i >= a.len() || j >= b.len() {
            // One side exhausted: cn can no longer grow.
            break Similarity::NSim;
        }
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
            du -= 1;
            if du < min_cn {
                break Similarity::NSim;
            }
        } else if x > y {
            j += 1;
            dv -= 1;
            if dv < min_cn {
                break Similarity::NSim;
            }
        } else {
            cn += 1;
            if cn >= min_cn {
                break Similarity::Sim;
            }
            i += 1;
            j += 1;
        }
    };
    counters::record_scanned((i + j) as u64);
    result
}

/// Reference implementation of the full `CompSim` contract used by the
/// differential tests: exhaustively computes `|a ∩ b| + 2` and compares.
pub fn check_reference(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    if count_full(a, b) + 2 >= min_cn {
        Similarity::Sim
    } else {
        Similarity::NSim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_count_basic() {
        assert_eq!(count_full(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(count_full(&[], &[1, 2]), 0);
        assert_eq!(count_full(&[7], &[7]), 1);
        assert_eq!(count_full(&[1, 2, 3], &[4, 5, 6]), 0);
    }

    #[test]
    fn early_trivial_sim() {
        // min_cn ≤ 2 is always similar ({u, v} suffices).
        assert_eq!(check_early(&[], &[], 2), Similarity::Sim);
        assert_eq!(check_early(&[9], &[1], 1), Similarity::Sim);
    }

    #[test]
    fn early_degree_bound_nsim() {
        // du = 0 + 2 = 2 < 3.
        assert_eq!(check_early(&[], &[1, 2, 3], 3), Similarity::NSim);
    }

    #[test]
    fn early_matches_reference() {
        let a = [1u32, 4, 6, 8, 10, 12];
        let b = [2u32, 4, 8, 9, 12, 20];
        for min_cn in 0..10 {
            assert_eq!(
                check_early(&a, &b, min_cn),
                check_reference(&a, &b, min_cn),
                "min_cn = {min_cn}"
            );
        }
    }

    #[test]
    fn early_terminates_on_sim() {
        // Identical arrays, low threshold: must return Sim.
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(check_early(&a, &a, 3), Similarity::Sim);
    }

    #[test]
    fn early_terminates_on_exhaustion() {
        // Disjoint arrays: NSim once a side exhausts or a bound drops.
        assert_eq!(check_early(&[1, 2, 3], &[10, 20, 30], 4), Similarity::NSim);
    }
}
