//! Vectorized pivot-based set intersection (paper Algorithm 6).
//!
//! Two flavours, mirroring the paper's two platforms:
//!
//! * [`avx512`] — 16 lanes per `_mm512_cmpgt_epi32_mask`, the KNL path.
//! * [`avx2`] — 8 lanes per `_mm256_cmpgt_epi32` + `movemask`, the CPU
//!   server path.
//!
//! Both keep the early-termination bounds of Definition 3.9: step 1
//! advances the `a` cursor past the pivot `b[j]` in 16-/8-element strides,
//! decrementing `du` by the per-stride mismatch count (`popcnt` of the
//! comparison mask); step 2 does the same for `b`/`dv`; step 3 consumes a
//! match and checks `cn ≥ min_cn`. When fewer than one full vector of
//! elements remains on either side, the kernel falls back to the scalar
//! pivot loop *with its accumulated bounds* (`pivot::run_from`), exactly
//! as Algorithm 6 line 23 prescribes.
//!
//! # Safety
//!
//! The intrinsics use *signed* 32-bit comparisons, so vertex ids must be
//! `< 2³¹`; the public dispatcher (`kernel::Kernel::check`) debug-asserts
//! this, and the graph substrate cannot exceed it without exceeding
//! `i32::MAX` vertices. Loads are unaligned (`loadu`) and guarded so that
//! all 16/8 loaded lanes are in bounds.

use crate::counters;
use crate::pivot::{self, PivotState};
use crate::similarity::Similarity;

/// Whether the AVX-512 kernel can run on this CPU.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX2 kernel can run on this CPU.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX-512 pivot kernel (16 lanes).
pub mod avx512 {
    use super::*;

    /// Vectorized `CompSim`; same contract as [`crate::merge::check_early`].
    ///
    /// # Panics
    /// Panics (debug) / falls back (release) if AVX-512F is unavailable —
    /// use [`super::avx512_available`] or the [`crate::Kernel`] dispatcher.
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        counters::record_invocation();
        if min_cn <= 2 {
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if super::avx512_available() {
                // SAFETY: feature checked above; `inner` only issues
                // bounds-guarded unaligned loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX-512 kernel invoked without avx512f");
        pivot::run_from(a, b, s, min_cn)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    // SAFETY: contract — call only after
    // `is_x86_feature_detected!("avx512f")` (checked by the enclosing
    // dispatch wrapper).
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 16;
        loop {
            // Step 1: advance i until a[i] >= pivot b[j]. The pivot is
            // invariant across the inner while, so broadcast it once.
            // SAFETY: s.j < b.len() on entry to step 1 — the caller
            // rejected empty slices via the dv bound, step 2 keeps
            // s.j + 16 <= b.len(), and step 3 advances j by at most 1
            // past a position that satisfied that guard.
            let pivot_v = _mm512_set1_epi32(*b.get_unchecked(s.j) as i32);
            while s.i + LANES <= a.len() {
                // SAFETY: s.i + 16 <= a.len() guarantees the 64-byte
                // unaligned load stays within the slice.
                let u_eles = _mm512_loadu_si512(a.as_ptr().add(s.i) as *const _);
                // Lane k set iff pivot > a[i + k]; the slice is sorted, so
                // set lanes form a prefix and popcnt = #elements < pivot.
                let mask = _mm512_cmpgt_epi32_mask(pivot_v, u_eles);
                if mask == 0xFFFF {
                    // Whole stride below the pivot: advance by a full
                    // vector. Keeping the cursor update independent of the
                    // mask breaks the popcnt→address dependency chain, so
                    // long runs stream at load/compare throughput.
                    s.i += LANES;
                    s.du -= LANES as u64;
                    if s.du < min_cn {
                        return Similarity::NSim;
                    }
                    continue;
                }
                let bit_cnt = mask.count_ones() as usize;
                s.i += bit_cnt;
                s.du -= bit_cnt as u64;
                if s.du < min_cn {
                    return Similarity::NSim;
                }
                break;
            }
            if s.i + LANES > a.len() {
                break;
            }
            // Step 2: advance j until b[j] >= pivot a[i].
            // SAFETY: s.i + 16 <= a.len() was just checked.
            let pivot_v = _mm512_set1_epi32(*a.get_unchecked(s.i) as i32);
            while s.j + LANES <= b.len() {
                // SAFETY: as above, for `b`.
                let v_eles = _mm512_loadu_si512(b.as_ptr().add(s.j) as *const _);
                let mask = _mm512_cmpgt_epi32_mask(pivot_v, v_eles);
                if mask == 0xFFFF {
                    s.j += LANES;
                    s.dv -= LANES as u64;
                    if s.dv < min_cn {
                        return Similarity::NSim;
                    }
                    continue;
                }
                let bit_cnt = mask.count_ones() as usize;
                s.j += bit_cnt;
                s.dv -= bit_cnt as u64;
                if s.dv < min_cn {
                    return Similarity::NSim;
                }
                break;
            }
            if s.j + LANES > b.len() {
                break;
            }
            // Step 3: consume a match.
            // SAFETY: both indices are below the just-verified bounds.
            if *a.get_unchecked(s.i) == *b.get_unchecked(s.j) {
                s.cn += 1;
                s.i += 1;
                s.j += 1;
                if s.cn >= min_cn {
                    return Similarity::Sim;
                }
            }
        }
        // Fewer than 16 elements remain on one side: scalar tail resumes
        // with the accumulated bounds (Algorithm 6 line 23).
        pivot::run_from(a, b, s, min_cn)
    }
}

/// AVX2 pivot kernel (8 lanes) — the paper's CPU-server configuration.
pub mod avx2 {
    use super::*;

    /// Vectorized `CompSim`; same contract as [`crate::merge::check_early`].
    pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
        counters::record_invocation();
        if min_cn <= 2 {
            return Similarity::Sim;
        }
        let s = PivotState::new(a, b);
        if s.du < min_cn || s.dv < min_cn {
            return Similarity::NSim;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if super::avx2_available() {
                // SAFETY: feature checked above; `inner` only issues
                // bounds-guarded unaligned loads.
                return unsafe { inner(a, b, s, min_cn) };
            }
        }
        debug_assert!(false, "AVX2 kernel invoked without avx2");
        pivot::run_from(a, b, s, min_cn)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: contract — call only after
    // `is_x86_feature_detected!("avx2")` (checked by the enclosing
    // dispatch wrapper).
    unsafe fn inner(a: &[u32], b: &[u32], mut s: PivotState, min_cn: u64) -> Similarity {
        use std::arch::x86_64::*;
        const LANES: usize = 8;
        loop {
            // SAFETY: s.j < b.len() by the same argument as the AVX-512
            // kernel (see above); pivot is loop-invariant in step 1.
            let pivot_v = _mm256_set1_epi32(*b.get_unchecked(s.j) as i32);
            while s.i + LANES <= a.len() {
                // SAFETY: s.i + 8 <= a.len() keeps the 32-byte load in
                // bounds.
                let u_eles = _mm256_loadu_si256(a.as_ptr().add(s.i) as *const _);
                let cmp = _mm256_cmpgt_epi32(pivot_v, u_eles);
                let mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp)) as u32;
                if mask == 0xFF {
                    // Full stride below the pivot — advance without the
                    // popcnt→address dependency (see the AVX-512 kernel).
                    s.i += LANES;
                    s.du -= LANES as u64;
                    if s.du < min_cn {
                        return Similarity::NSim;
                    }
                    continue;
                }
                let bit_cnt = mask.count_ones() as usize;
                s.i += bit_cnt;
                s.du -= bit_cnt as u64;
                if s.du < min_cn {
                    return Similarity::NSim;
                }
                break;
            }
            if s.i + LANES > a.len() {
                break;
            }
            // SAFETY: s.i + 8 <= a.len() was just checked.
            let pivot_v = _mm256_set1_epi32(*a.get_unchecked(s.i) as i32);
            while s.j + LANES <= b.len() {
                // SAFETY: as above, for `b`.
                let v_eles = _mm256_loadu_si256(b.as_ptr().add(s.j) as *const _);
                let cmp = _mm256_cmpgt_epi32(pivot_v, v_eles);
                let mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp)) as u32;
                if mask == 0xFF {
                    s.j += LANES;
                    s.dv -= LANES as u64;
                    if s.dv < min_cn {
                        return Similarity::NSim;
                    }
                    continue;
                }
                let bit_cnt = mask.count_ones() as usize;
                s.j += bit_cnt;
                s.dv -= bit_cnt as u64;
                if s.dv < min_cn {
                    return Similarity::NSim;
                }
                break;
            }
            if s.j + LANES > b.len() {
                break;
            }
            // SAFETY: both indices are below the just-verified bounds.
            if *a.get_unchecked(s.i) == *b.get_unchecked(s.j) {
                s.cn += 1;
                s.i += 1;
                s.j += 1;
                if s.cn >= min_cn {
                    return Similarity::Sim;
                }
            }
        }
        pivot::run_from(a, b, s, min_cn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    fn grid_cases() -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut cases = Vec::new();
        // Sizes straddling the 8- and 16-lane boundaries.
        for &la in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
            for &lb in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
                // Interleaved with stride 3 / 2 so overlap is partial.
                let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
                let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
                cases.push((a, b));
            }
        }
        cases
    }

    #[test]
    fn avx512_agrees_with_merge() {
        if !avx512_available() {
            eprintln!("skipping: no AVX-512");
            return;
        }
        for (a, b) in grid_cases() {
            for min_cn in [0u64, 2, 3, 4, 8, 16, 40, 1000] {
                assert_eq!(
                    avx512::check_early(&a, &b, min_cn),
                    merge::check_early(&a, &b, min_cn),
                    "|a|={} |b|={} min_cn={min_cn}",
                    a.len(),
                    b.len()
                );
            }
        }
    }

    #[test]
    fn avx2_agrees_with_merge() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2");
            return;
        }
        for (a, b) in grid_cases() {
            for min_cn in [0u64, 2, 3, 4, 8, 16, 40, 1000] {
                assert_eq!(
                    avx2::check_early(&a, &b, min_cn),
                    merge::check_early(&a, &b, min_cn),
                    "|a|={} |b|={} min_cn={min_cn}",
                    a.len(),
                    b.len()
                );
            }
        }
    }

    #[test]
    fn identical_long_arrays() {
        let a: Vec<u32> = (0..1000).collect();
        for check in [
            avx2::check_early as fn(&[u32], &[u32], u64) -> Similarity,
            avx512::check_early,
        ] {
            assert_eq!(check(&a, &a, 500), Similarity::Sim);
            assert_eq!(check(&a, &a, 1003), Similarity::NSim);
            // 1002 = full overlap + 2 exactly.
            assert_eq!(check(&a, &a, 1002), Similarity::Sim);
        }
    }

    #[test]
    fn ids_near_i31_boundary() {
        // Largest ids the signed comparison supports.
        let top = (i32::MAX as u32) - 20;
        let a: Vec<u32> = (0..18).map(|k| top + k).collect();
        let b: Vec<u32> = (0..18).map(|k| top + k).collect();
        for check in [
            avx2::check_early as fn(&[u32], &[u32], u64) -> Similarity,
            avx512::check_early,
        ] {
            assert_eq!(check(&a, &b, 20), Similarity::Sim);
        }
    }
}
