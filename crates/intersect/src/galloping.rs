//! Galloping (exponential search) set intersection.
//!
//! The paper's related-work section (§3.2.2) notes that galloping-based
//! intersections are a poor fit for pSCAN because of their irregular
//! memory access; we implement one anyway so the benchmark suite can
//! demonstrate that claim empirically (`benches/intersect.rs`).
//!
//! The kernel keeps the same early-termination contract as the others:
//! galloping over `b` lets the `dv` bound drop by a whole skipped run at
//! once, and every consumed element of `a` drops `du` by one.

use crate::counters;
use crate::similarity::Similarity;

/// Exponential search: smallest index `k ∈ [lo, b.len()]` with
/// `b[k] >= x` (i.e. the lower bound of `x` in `b[lo..]`).
#[inline]
fn gallop_lower_bound(b: &[u32], lo: usize, x: u32) -> usize {
    if lo >= b.len() || b[lo] >= x {
        return lo;
    }
    // Invariant: b[lo + step_prev] < x.
    let mut step = 1usize;
    let mut prev = lo;
    loop {
        let probe = lo + step;
        if probe >= b.len() {
            break;
        }
        if b[probe] >= x {
            // Binary search in (prev, probe].
            return prev + 1 + partition_point(&b[prev + 1..=probe], x);
        }
        prev = probe;
        step <<= 1;
    }
    prev + 1 + partition_point(&b[prev + 1..], x)
}

/// Number of elements `< x` in sorted slice `s`.
#[inline]
fn partition_point(s: &[u32], x: u32) -> usize {
    s.partition_point(|&e| e < x)
}

/// Galloping `CompSim` with early termination; same contract as
/// [`crate::merge::check_early`]. Iterates the shorter array, gallops in
/// the longer one.
pub fn check_early(a: &[u32], b: &[u32], min_cn: u64) -> Similarity {
    counters::record_invocation();
    if min_cn <= 2 {
        return Similarity::Sim;
    }
    // Gallop in the longer array.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut d_small = small.len() as u64 + 2;
    let mut d_large = large.len() as u64 + 2;
    if d_small < min_cn || d_large < min_cn {
        return Similarity::NSim;
    }
    let mut cn = 2u64;
    let mut j = 0usize;
    let mut scanned = 0u64;
    for &x in small.iter() {
        let nj = gallop_lower_bound(large, j, x);
        d_large -= (nj - j) as u64;
        scanned += (nj - j) as u64 + 1;
        j = nj;
        if d_large < min_cn {
            counters::record_scanned(scanned);
            return Similarity::NSim;
        }
        if j < large.len() && large[j] == x {
            cn += 1;
            j += 1;
            if cn >= min_cn {
                counters::record_scanned(scanned);
                return Similarity::Sim;
            }
        } else {
            d_small -= 1;
            if d_small < min_cn {
                counters::record_scanned(scanned);
                return Similarity::NSim;
            }
        }
        if j >= large.len() {
            // The large side is exhausted: cn can no longer grow, and
            // cn < min_cn held at every Sim check above, so NSim is final.
            break;
        }
    }
    counters::record_scanned(scanned);
    debug_assert!(cn < min_cn);
    Similarity::NSim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;

    #[test]
    fn lower_bound_basics() {
        let b = [2u32, 4, 6, 8, 10, 12, 14];
        assert_eq!(gallop_lower_bound(&b, 0, 1), 0);
        assert_eq!(gallop_lower_bound(&b, 0, 2), 0);
        assert_eq!(gallop_lower_bound(&b, 0, 3), 1);
        assert_eq!(gallop_lower_bound(&b, 0, 14), 6);
        assert_eq!(gallop_lower_bound(&b, 0, 15), 7);
        assert_eq!(gallop_lower_bound(&b, 3, 5), 3);
        assert_eq!(gallop_lower_bound(&b, 7, 1), 7);
    }

    #[test]
    fn agrees_with_merge() {
        let a: Vec<u32> = (0..200).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..500).map(|x| x * 2).collect();
        for min_cn in [0u64, 2, 3, 5, 20, 50, 100, 1000] {
            assert_eq!(
                check_early(&a, &b, min_cn),
                merge::check_early(&a, &b, min_cn),
                "min_cn = {min_cn}"
            );
        }
    }

    #[test]
    fn asymmetric_sizes() {
        let a = [7u32];
        let b: Vec<u32> = (0..10_000).collect();
        assert_eq!(check_early(&a, &b, 3), Similarity::Sim);
        let a = [100_000u32];
        assert_eq!(check_early(&a, &b, 3), Similarity::NSim);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(check_early(&[], &[], 3), Similarity::NSim);
        assert_eq!(check_early(&[], &[], 2), Similarity::Sim);
        assert_eq!(check_early(&[1], &[], 3), Similarity::NSim);
    }
}
