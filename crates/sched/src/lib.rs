//! # ppscan-sched
//!
//! Degree-based dynamic task scheduling (paper §4.4, Algorithm 5) on a
//! persistent work-stealing thread pool with **pluggable execution
//! strategies**.
//!
//! ppSCAN bundles vertex computations into tasks by accumulating the
//! degrees of vertices that still require work and cutting a task every
//! time the running sum exceeds a threshold (32768 in the paper's tuned
//! setting). Tasks are contiguous vertex ranges — so worker threads touch
//! adjacent regions of the CSR `dst`/`sim` arrays — and are executed on
//! worker threads with dynamic scheduling.
//!
//! This crate provides that scheduler as a reusable primitive:
//!
//! * [`chunk_by_weight`] reproduces Algorithm 5's master-thread loop:
//!   given a per-vertex weight (degree, or 0 for vertices whose role is
//!   already known), it emits the task ranges.
//! * [`WorkerPool`] runs a closure over every task range
//!   ([`WorkerPool::run_chunks`]), over per-vertex indices
//!   ([`WorkerPool::run_vertices`]), or over disjoint mutable items
//!   ([`WorkerPool::run_mut`]), under a chosen [`ExecutionStrategy`].
//!
//! ## Scheduler backends
//!
//! A pool dispatches through one of two [`SchedulerKind`] backends:
//!
//! * [`SchedulerKind::WorkStealing`] (the default) — worker threads are
//!   spawned **once**, when the pool is built, and parked on a condvar
//!   between dispatches. Each dispatch partitions the task positions
//!   into per-worker bounded deques; a worker drains its own deque from
//!   the bottom and, when empty, steals from the top of a randomly
//!   chosen victim's deque (Chase–Lev protocol, std-only). This removes
//!   the per-phase thread spawn/join cost — ppSCAN runs six
//!   barrier-separated phases per clustering, so the old
//!   spawn-per-dispatch pool paid that cost repeatedly on every run.
//! * [`SchedulerKind::SharedQueue`] — the legacy backend: scoped workers
//!   spawned per dispatch, all claiming positions from one shared atomic
//!   cursor. Kept for the `sched_overhead` before/after ablation.
//!
//! Both backends execute the same task set and claim positions in a
//! compatible order (contiguous for `Parallel`, seed-permuted for
//! `AdversarialSeeded`), so results — which Theorems 4.1/4.2 require to
//! be schedule-independent — are directly comparable across backends.
//!
//! ## Execution strategies
//!
//! Parallel SCAN reproductions live or die on determinism of the *result*
//! under nondeterministic schedules (Theorems 4.1/4.2). To make schedule
//! bugs reproducible on demand instead of once-in-a-hundred CI runs,
//! every phase can be replayed under one of these strategies:
//!
//! * [`ExecutionStrategy::Parallel`] — the production path: worker
//!   threads drain per-worker deques with randomized-victim stealing
//!   (work conservation without static assignment, the
//!   `SubmitTaskToPool` of Algorithm 5).
//! * [`ExecutionStrategy::SequentialDeterministic`] — every task runs in
//!   submission order on the caller thread. A reference schedule: any
//!   result difference against `Parallel` is a concurrency bug.
//! * [`ExecutionStrategy::AdversarialSeeded`] — a seeded task-order
//!   permutation plus seeded pre/post-task yield injection, so worker
//!   interleavings vary reproducibly with the seed. Used by the
//!   differential stress driver to hunt schedule-dependent bugs and to
//!   pin regressions to a replayable seed.
//! * [`ExecutionStrategy::Modeled`] — caller thread, oracle-chosen order
//!   (the model-checking seam; see [`modeled`]).
//!
//! ## Observability
//!
//! The pool is the workspace's single context-propagation point: on every
//! dispatch it captures the submitting thread's ambient context through
//! the `ppscan_obs::propagate` registry (span collectors, kernel counter
//! scopes, and anything else a layer registers) and attaches it on every
//! worker thread for the duration of that dispatch. Each task
//! additionally runs inside a `ppscan_obs::Span` named after the
//! submitting thread's current stage, with the worker id tagged, so an
//! active `ppscan_obs::Collector` sees per-stage / per-worker busy time,
//! task counts, injected-yield counts, and steal counts — with zero
//! plumbing at call sites.
//!
//! ```
//! use ppscan_sched::{chunk_by_weight, ExecutionStrategy, WorkerPool, DEFAULT_DEGREE_THRESHOLD};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let degrees = [100u64, 1, 1, 50_000, 2, 2];
//! let tasks = chunk_by_weight(6, 64, |v| degrees[v as usize]);
//! assert!(tasks.len() > 1); // the heavy vertex forces a cut
//!
//! for strategy in [
//!     ExecutionStrategy::Parallel,
//!     ExecutionStrategy::SequentialDeterministic,
//!     ExecutionStrategy::AdversarialSeeded { seed: 7 },
//! ] {
//!     let pool = WorkerPool::with_strategy(2, strategy);
//!     let sum = AtomicU64::new(0);
//!     pool.run_chunks(&tasks, |range| {
//!         for v in range {
//!             sum.fetch_add(degrees[v as usize], Ordering::Relaxed);
//!         }
//!     });
//!     assert_eq!(sum.load(Ordering::Relaxed), degrees.iter().sum::<u64>());
//! }
//! let _ = DEFAULT_DEGREE_THRESHOLD;
//! ```

use ppscan_obs::registry::{Counter, MetricsRegistry};
use std::any::Any;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// The paper's tuned degree-sum threshold: "when the degree sum is above
/// the threshold 32768 … a task is submitted". Tuned by doubling from 1
/// until the task-queue maintenance cost became negligible (§4.4).
pub const DEFAULT_DEGREE_THRESHOLD: u64 = 32_768;

/// How a [`WorkerPool`] orders and interleaves its tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecutionStrategy {
    /// Production path: tasks are claimed from per-worker deques (with
    /// stealing) by `threads` worker threads.
    #[default]
    Parallel,
    /// Every task runs in submission order on the caller thread; no
    /// worker threads are spawned. The reference schedule for
    /// differential testing.
    SequentialDeterministic,
    /// Tasks are claimed by worker threads in a seeded *permuted* order,
    /// and every task is bracketed by a seeded number of
    /// `std::thread::yield_now` calls, perturbing the interleaving
    /// reproducibly. Same seed + same task set ⇒ same submission order
    /// and injection pattern (the OS interleaving still varies, which is
    /// the point: one seed explores a family of schedules biased away
    /// from the happy path).
    AdversarialSeeded {
        /// Permutation and yield-injection seed.
        seed: u64,
    },
    /// Every task runs on the caller thread, in an order chosen by the
    /// ambient [`modeled`] oracle (submission order when none is
    /// installed). This is the model-checking seam: an exhaustive
    /// explorer — `ppscan-check`, or a test sweeping permutations —
    /// installs an oracle with [`modeled::with_oracle`] and drives the
    /// pool through every task order it cares about, deterministically.
    Modeled,
}

/// Which dispatch backend a [`WorkerPool`] uses for its parallel
/// strategies. Strategies that run on the caller thread
/// (`SequentialDeterministic`, `Modeled`) never touch the backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Persistent parked workers draining per-worker deques with
    /// randomized-victim stealing. Workers are spawned once per pool and
    /// woken per dispatch.
    #[default]
    WorkStealing,
    /// The pre-stealing backend: workers spawned per dispatch, claiming
    /// positions from one shared atomic cursor. Kept so the
    /// `sched_overhead` harness can measure what the persistent pool
    /// buys end to end.
    SharedQueue,
}

impl SchedulerKind {
    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::WorkStealing => "work-stealing",
            SchedulerKind::SharedQueue => "shared-queue",
        }
    }

    /// Parses a scheduler name as printed by [`SchedulerKind::name`].
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "work-stealing" | "stealing" => Some(SchedulerKind::WorkStealing),
            "shared-queue" | "shared" => Some(SchedulerKind::SharedQueue),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The task-order oracle backing [`ExecutionStrategy::Modeled`].
///
/// An oracle is a thread-local closure `FnMut(num_tasks) -> order`
/// consulted once per pool dispatch; it returns the permutation of
/// `0..num_tasks` in which the caller thread executes the tasks. With no
/// oracle installed, `Modeled` degrades to submission order (identical
/// to [`ExecutionStrategy::SequentialDeterministic`]).
pub mod modeled {
    use std::cell::RefCell;

    type Oracle = Box<dyn FnMut(usize) -> Vec<usize>>;

    thread_local! {
        static ORACLE: RefCell<Option<Oracle>> = const { RefCell::new(None) };
    }

    /// Installs `oracle` as the caller thread's task-order oracle for
    /// the duration of `f` (restoring any previously installed oracle
    /// afterwards, so oracles nest).
    ///
    /// The orders an oracle returns must be permutations of
    /// `0..num_tasks`; dispatch panics otherwise.
    pub fn with_oracle<R>(
        oracle: impl FnMut(usize) -> Vec<usize> + 'static,
        f: impl FnOnce() -> R,
    ) -> R {
        let prev = ORACLE.with(|o| o.borrow_mut().replace(Box::new(oracle)));
        struct Restore(Option<Oracle>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                ORACLE.with(|o| *o.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The order for a dispatch of `num_tasks` tasks: the oracle's
    /// choice, or submission order when no oracle is installed.
    pub(crate) fn order_for(num_tasks: usize) -> Vec<usize> {
        let order = ORACLE.with(|o| {
            o.borrow_mut()
                .as_mut()
                .map(|oracle| oracle(num_tasks))
                .unwrap_or_else(|| (0..num_tasks).collect())
        });
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert!(
            sorted.into_iter().eq(0..num_tasks),
            "modeled oracle must return a permutation of 0..{num_tasks}, got {order:?}"
        );
        order
    }
}

impl ExecutionStrategy {
    /// Parses the [`Display`](std::fmt::Display) form back into a
    /// strategy: `"parallel"`, `"sequential"`, `"adversarial(SEED)"`.
    /// Used by report readers and the stress corpus replayer.
    pub fn parse(s: &str) -> Option<ExecutionStrategy> {
        match s {
            "parallel" => Some(ExecutionStrategy::Parallel),
            "sequential" => Some(ExecutionStrategy::SequentialDeterministic),
            "modeled" => Some(ExecutionStrategy::Modeled),
            _ => {
                let seed = s.strip_prefix("adversarial(")?.strip_suffix(')')?;
                Some(ExecutionStrategy::AdversarialSeeded {
                    seed: seed.parse().ok()?,
                })
            }
        }
    }
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionStrategy::Parallel => write!(f, "parallel"),
            ExecutionStrategy::SequentialDeterministic => write!(f, "sequential"),
            ExecutionStrategy::AdversarialSeeded { seed } => write!(f, "adversarial({seed})"),
            ExecutionStrategy::Modeled => write!(f, "modeled"),
        }
    }
}

/// SplitMix64 step — the standard 64-bit mixer (Steele et al.), used for
/// seeded permutations, yield counts, and victim selection so the crate
/// stays free of external RNG dependencies.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Chunk size for [`WorkerPool::run_vertices`]: fixed multiple of the
/// thread count so the task set is a pure function of `(n, threads)` —
/// independent of the strategy, which keeps sequential and parallel
/// replays working over identical task sets.
fn uniform_chunks(n: usize, threads: usize) -> Vec<Range<u32>> {
    if n == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(threads * 4).max(1);
    (0..n)
        .step_by(per)
        .map(|s| s as u32..((s + per).min(n)) as u32)
        .collect()
}

/// Algorithm 5's master-thread loop: walks vertices `0..n`, accumulates
/// `weight(v)` and cuts a task range whenever the accumulated sum exceeds
/// `threshold`. Vertices with weight 0 (no work required — e.g. role
/// already known) still belong to some range, but never force cuts, so a
/// long prefix of finished vertices costs nothing.
///
/// Returns contiguous, disjoint ranges exactly covering `0..n` (no range
/// for `n = 0`). Every range except possibly the last has accumulated
/// weight exceeding `threshold` or is a single overweight vertex.
pub fn chunk_by_weight(
    n: usize,
    threshold: u64,
    mut weight: impl FnMut(u32) -> u64,
) -> Vec<Range<u32>> {
    let mut tasks = Vec::new();
    let mut beg = 0u32;
    let mut acc = 0u64;
    for v in 0..n as u32 {
        acc = acc.saturating_add(weight(v));
        if acc > threshold {
            tasks.push(beg..v + 1);
            beg = v + 1;
            acc = 0;
        }
    }
    if (beg as usize) < n {
        tasks.push(beg..n as u32);
    }
    tasks
}

/// The task set [`WorkerPool::run_weighted`] executes: Algorithm 5's
/// [`chunk_by_weight`], except that when there are *fewer vertices than
/// workers* the accumulator would almost always emit a single task (a
/// tiny range rarely exceeds the threshold), leaving every other thread
/// idle and — worse for the differential stress driver — collapsing the
/// schedule space to one interleaving. Emit one task per vertex instead,
/// so even degenerate graphs exercise multi-task schedules.
pub fn weighted_tasks(
    n: usize,
    threshold: u64,
    threads: usize,
    weight: impl FnMut(u32) -> u64,
) -> Vec<Range<u32>> {
    if n > 0 && n < threads {
        return (0..n as u32).map(|v| v..v + 1).collect();
    }
    chunk_by_weight(n, threshold, weight)
}

/// Locks a mutex, ignoring poisoning: the pool's own state transitions
/// never panic mid-update, and a poisoned lock here would otherwise turn
/// one propagated task panic into a wedged pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Live pool telemetry: counters registered in a
/// [`MetricsRegistry`](ppscan_obs::registry::MetricsRegistry) and fed by
/// the pool once attached via [`WorkerPool::attach_metrics`].
///
/// Complements the span layer, which aggregates *per run* and only while
/// a collector is active: these counters are always on and cheap enough
/// to sample live (a long-lived serve process polls them into its
/// timeline). `dispatches`/`tasks` count on every strategy and backend;
/// `steals`, `parks`, `wakes`, and `worker_busy` are fed by the
/// persistent work-stealing backend (the only backend with parked
/// workers and steal traffic worth watching), so they stay 0 on
/// caller-thread and shared-queue runs.
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    /// Dispatches submitted to the pool, any strategy.
    pub dispatches: Counter,
    /// Logical tasks across all dispatches.
    pub tasks: Counter,
    /// Tasks that migrated between workers via stealing.
    pub steals: Counter,
    /// Park episodes: a worker ran out of work and blocked on the
    /// pool condvar (counted once per episode, not per spurious wake).
    pub parks: Counter,
    /// Parked workers woken with a job to run.
    pub wakes: Counter,
    /// Per-worker busy nanoseconds (time inside task bodies).
    pub worker_busy: Vec<Counter>,
}

impl PoolMetrics {
    /// Registers the pool counter family under `prefix` (names
    /// `{prefix}.dispatches`, `{prefix}.tasks`, `{prefix}.steals`,
    /// `{prefix}.parks`, `{prefix}.wakes`,
    /// `{prefix}.worker{W}.busy_nanos`) for a pool of `workers` threads.
    pub fn register(registry: &MetricsRegistry, prefix: &str, workers: usize) -> Arc<PoolMetrics> {
        Arc::new(PoolMetrics {
            dispatches: registry.counter(&format!("{prefix}.dispatches")),
            tasks: registry.counter(&format!("{prefix}.tasks")),
            steals: registry.counter(&format!("{prefix}.steals")),
            parks: registry.counter(&format!("{prefix}.parks")),
            wakes: registry.counter(&format!("{prefix}.wakes")),
            worker_busy: (0..workers)
                .map(|w| registry.counter(&format!("{prefix}.worker{w}.busy_nanos")))
                .collect(),
        })
    }
}

/// Runs queue position `queue_pos` of a dispatch: maps the position
/// through the adversarial claim-order permutation if one is installed,
/// brackets the task with seeded yields under adversarial replay, and
/// records the task as a span under `stage`. Shared by the inline,
/// shared-queue, and work-stealing paths so every backend executes
/// byte-identical task bodies.
fn run_position<F>(
    run_task: &F,
    stage: &'static str,
    order: Option<&[usize]>,
    seed: u64,
    queue_pos: usize,
) where
    F: Fn(usize) + Sync,
{
    let task = order.map_or(queue_pos, |o| o[queue_pos]);
    if order.is_some() {
        // Seeded pre/post-task yield injection: perturb where this
        // worker sits relative to the others without changing what it
        // computes.
        let mut state = seed ^ (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let pre = splitmix64(&mut state) % 4;
        for _ in 0..pre {
            std::thread::yield_now();
        }
        {
            let _span = ppscan_obs::Span::enter(stage);
            run_task(task);
        }
        let post = splitmix64(&mut state) % 2;
        for _ in 0..post {
            std::thread::yield_now();
        }
        ppscan_obs::span::record_yields(pre + post);
    } else {
        let _span = ppscan_obs::Span::enter(stage);
        run_task(task);
    }
}

/// One worker's slice of the dispatch positions, stealable from the
/// other end: a Chase–Lev deque specialised to the pool's drain-only
/// life cycle. Positions `top..bottom` are outstanding; the owner pops
/// from `bottom`, thieves advance `top`. No pushes ever happen after
/// publication (the task set is fixed at dispatch), so the classic
/// protocol loses its grow/overflow cases and needs no buffer — the
/// indices *are* the values.
struct Deque {
    /// Steal end (thieves advance this upward). `isize` so the owner's
    /// speculative `bottom - 1` underflow on an empty deque stays
    /// well-defined.
    top: AtomicIsize,
    /// Owner end (the owner moves this downward).
    bottom: AtomicIsize,
}

enum Steal {
    Taken(usize),
    Empty,
    /// Lost a CAS race with the owner or another thief; the deque may
    /// still hold work, so a draining scan must revisit it.
    Retry,
}

impl Deque {
    fn new(range: Range<usize>) -> Self {
        Deque {
            top: AtomicIsize::new(range.start as isize),
            bottom: AtomicIsize::new(range.end as isize),
        }
    }

    /// Owner pop from the bottom. The SeqCst fence orders the
    /// speculative `bottom` decrement against the thief's `top` read —
    /// the heart of the Chase–Lev protocol: either the thief sees the
    /// decrement (and finds the deque empty) or the owner sees the
    /// thief's `top` advance (and backs off / races the CAS on the last
    /// element).
    fn take(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single element left: race thieves for it, then reset
                // to the canonical empty state either way.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(b as usize);
            }
            Some(b as usize)
        } else {
            // Already empty; undo the speculative decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief steal from the top.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Taken(t as usize)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

/// Splits dispatch positions `0..num_tasks` into one contiguous deque
/// per worker (balanced to within one task; empty deques for surplus
/// workers).
fn deques_for(num_tasks: usize, workers: usize) -> Vec<Deque> {
    (0..workers)
        .map(|w| Deque::new(w * num_tasks / workers..(w + 1) * num_tasks / workers))
        .collect()
}

/// Everything one dispatch shares with the persistent workers. Lives on
/// the submitting thread's stack: the submitter blocks until every
/// worker has signalled completion, so the borrow outlives all use (that
/// barrier is what makes the type-erased [`Job`] pointer sound).
struct DispatchCtx<'a, F: Fn(usize) + Sync> {
    run_task: &'a F,
    stage: &'static str,
    /// Adversarial claim-order permutation (`None` ⇒ plain parallel).
    order: Option<Vec<usize>>,
    seed: u64,
    deques: Vec<Deque>,
    /// The submitter's ambient observability context, attached by every
    /// worker for the duration of the dispatch.
    ambient: ppscan_obs::propagate::CapturedContext,
    /// Fork/join scope of the race detector: every task records a fork
    /// (or steal) edge at start and contributes to the join edge at end
    /// (see [`ppscan_obs::race::task_scope`]). Inert when no detection
    /// session is active.
    fork: ppscan_obs::race::ForkPoint,
    /// Live pool counters, when attached ([`WorkerPool::attach_metrics`]).
    metrics: Option<Arc<PoolMetrics>>,
    /// First task panic, re-raised on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set after a task panicked: the remaining workers stop claiming.
    abort: AtomicBool,
}

impl<F: Fn(usize) + Sync> DispatchCtx<'_, F> {
    /// A persistent worker's share of one dispatch: drain the own deque,
    /// then steal from randomized victims until every deque is empty.
    /// All observability guards are scoped *inside* this call, so their
    /// deferred counter/span flushes land before the worker signals
    /// completion and releases the submitter.
    fn worker_main(&self, w: usize) {
        let _worker = ppscan_obs::span::enter_worker(w);
        let _ambient = self.ambient.attach();
        let mut rng = self.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed;
        let mut steals = 0u64;
        // Busy time accumulates locally and flushes once at the end of
        // the worker's share, keeping the per-task cost at two `Instant`
        // reads when metrics are attached and zero otherwise.
        let mut busy_nanos = 0u64;
        let own = &self.deques[w];
        while !self.abort.load(Ordering::Relaxed) {
            if let Some(pos) = own.take() {
                busy_nanos += self.run_pos(pos);
                continue;
            }
            match self.steal_from_any(w, &mut rng) {
                Some(pos) => {
                    steals += 1;
                    busy_nanos += self.run_pos(pos);
                }
                None => break,
            }
        }
        ppscan_obs::span::record_steals(steals);
        if let Some(metrics) = &self.metrics {
            metrics.steals.add(steals);
            metrics.worker_busy[w].add(busy_nanos);
        }
    }

    /// One full randomized-victim sweep, repeated while any victim
    /// reports a lost race. Termination needs no consensus round: the
    /// task set is fixed at publication (deques only drain), so a single
    /// sweep observing every deque empty with no contention is final.
    fn steal_from_any(&self, w: usize, rng: &mut u64) -> Option<usize> {
        let n = self.deques.len();
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return None;
            }
            let offset = (splitmix64(rng) % n as u64) as usize;
            let mut contended = false;
            for i in 0..n {
                let victim = (offset + i) % n;
                if victim == w {
                    continue;
                }
                match self.deques[victim].steal() {
                    Steal::Taken(pos) => return Some(pos),
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Runs one claimed position, returning its busy nanoseconds (0 when
    /// no metrics are attached — the timing reads are skipped entirely).
    fn run_pos(&self, pos: usize) -> u64 {
        let start = self.metrics.is_some().then(Instant::now);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ppscan_obs::race::task_scope(&self.fork, || {
                run_position(
                    self.run_task,
                    self.stage,
                    self.order.as_deref(),
                    self.seed,
                    pos,
                );
            });
        }));
        if let Err(payload) = result {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
            self.abort.store(true, Ordering::SeqCst);
        }
        start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

/// A type-erased pointer to the current dispatch's [`DispatchCtx`],
/// published to the persistent workers through the pool mutex.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    // SAFETY: contract of the pointee — `call` must only be invoked
    // with the matching `data` while the submitting dispatch is still
    // blocked (see the `Send` impl below).
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points at a `DispatchCtx` (which is `Sync` — all its
// fields are shared-access-safe) pinned on the submitting thread's
// stack; the submitter blocks until every worker finishes, so the
// pointee strictly outlives all worker access.
unsafe impl Send for Job {}

/// Monomorphized entry point stored in [`Job::call`]: recovers the
/// concrete `DispatchCtx` type and runs one worker's share.
// SAFETY: contract — `data` must point at a live `DispatchCtx<F>` of
// the same `F` this shim was monomorphized for.
unsafe fn worker_shim<F: Fn(usize) + Sync>(data: *const (), w: usize) {
    // SAFETY: `data` was created from `&DispatchCtx<F>` in
    // `WorkerPool::dispatch` and is kept alive by the completion
    // barrier (see `Job`).
    let ctx = unsafe { &*data.cast::<DispatchCtx<'_, F>>() };
    ctx.worker_main(w);
}

struct PoolState {
    /// Bumped once per dispatch; workers run each epoch exactly once.
    epoch: u64,
    /// The published dispatch, `Some` from publication until the
    /// submitter observes completion.
    job: Option<Job>,
    /// Workers still inside the current epoch.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between dispatches (the park/unpark handshake).
    work_cv: Condvar,
    /// The submitter parks here until `active` drops to zero.
    done_cv: Condvar,
    /// Live park/wake counters, when attached. Workers re-read this at
    /// the top of every epoch, so an attach takes effect from the next
    /// park episode onward.
    metrics: Mutex<Option<Arc<PoolMetrics>>>,
}

/// The persistent worker threads of a [`SchedulerKind::WorkStealing`]
/// pool. Spawned once at pool construction, parked on `work_cv` between
/// dispatches, joined on drop.
struct PersistentWorkers {
    shared: Arc<PoolShared>,
    /// Serialises concurrent dispatches on a shared pool (the epoch
    /// protocol carries one job at a time).
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl PersistentWorkers {
    fn spawn(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics: Mutex::new(None),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppscan-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        PersistentWorkers {
            shared,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// Publishes `ctx` to the workers, blocks until all of them have
    /// finished the epoch, then re-raises the first task panic (if any)
    /// on the calling thread.
    fn dispatch<F: Fn(usize) + Sync>(&self, threads: usize, ctx: &DispatchCtx<'_, F>) {
        let payload = {
            let _submit = lock(&self.submit);
            {
                let mut st = lock(&self.shared.state);
                st.epoch += 1;
                st.job = Some(Job {
                    data: (ctx as *const DispatchCtx<'_, F>).cast(),
                    call: worker_shim::<F>,
                });
                st.active = threads;
                self.shared.work_cv.notify_all();
            }
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            drop(st);
            lock(&ctx.panic).take()
            // `_submit` drops here — before the resume below — so a
            // propagated panic cannot poison the submit lock.
        };
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for PersistentWorkers {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A persistent worker's outer loop: park until the epoch advances, run
/// the published job, signal completion, repeat until shutdown.
fn worker_loop(shared: &PoolShared, w: usize) {
    let mut seen = 0u64;
    loop {
        let metrics = lock(&shared.metrics).clone();
        let job = {
            let mut st = lock(&shared.state);
            let mut parked = false;
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    seen = st.epoch;
                    if parked {
                        if let Some(m) = &metrics {
                            m.wakes.incr();
                        }
                    }
                    break st.job.expect("an open epoch must carry a job");
                }
                if !parked {
                    // Once per episode: spurious condvar wakes within
                    // the same idle stretch are not new parks.
                    parked = true;
                    if let Some(m) = &metrics {
                        m.parks.incr();
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the submitter holds the DispatchCtx alive until
        // `active` reaches zero, which happens only after this call
        // returns and we decrement below.
        unsafe { (job.call)(job.data, w) };
        let mut st = lock(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A task-execution engine with an explicit thread count,
/// [`ExecutionStrategy`], and [`SchedulerKind`]. One pool is built per
/// algorithm run so the thread count is an explicit experiment parameter
/// (Figure 6 sweeps it from 1 to 256).
///
/// Under the default [`SchedulerKind::WorkStealing`] backend the worker
/// threads are spawned once, at construction, and parked between
/// dispatches; a task panic still propagates to the submitting thread
/// exactly like a sequential panic would. Under
/// [`SchedulerKind::SharedQueue`] workers are spawned per submission
/// (scoped), reproducing the pre-stealing scheduler for ablations.
pub struct WorkerPool {
    threads: usize,
    strategy: ExecutionStrategy,
    scheduler: SchedulerKind,
    /// `Some` iff the backend is `WorkStealing` *and* the strategy can
    /// dispatch in parallel (`Parallel` / `AdversarialSeeded`) *and*
    /// `threads > 1` — caller-thread strategies never pay for idle
    /// workers.
    persistent: Option<PersistentWorkers>,
    /// Live pool counters, when attached ([`Self::attach_metrics`]).
    metrics: Mutex<Option<Arc<PoolMetrics>>>,
}

impl WorkerPool {
    /// Builds a pool with exactly `threads` worker threads and the
    /// production [`ExecutionStrategy::Parallel`] strategy.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        Self::with_strategy(threads, ExecutionStrategy::Parallel)
    }

    /// Builds a pool with an explicit execution strategy on the default
    /// work-stealing backend.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_strategy(threads: usize, strategy: ExecutionStrategy) -> Self {
        Self::with_scheduler(threads, strategy, SchedulerKind::default())
    }

    /// Builds a pool with an explicit execution strategy and dispatch
    /// backend.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_scheduler(
        threads: usize,
        strategy: ExecutionStrategy,
        scheduler: SchedulerKind,
    ) -> Self {
        assert!(threads > 0, "need at least one thread");
        let wants_workers = matches!(
            strategy,
            ExecutionStrategy::Parallel | ExecutionStrategy::AdversarialSeeded { .. }
        );
        let persistent = (scheduler == SchedulerKind::WorkStealing && threads > 1 && wants_workers)
            .then(|| PersistentWorkers::spawn(threads));
        Self {
            threads,
            strategy,
            scheduler,
            persistent,
            metrics: Mutex::new(None),
        }
    }

    /// Attaches live counters to the pool: from here on, every dispatch
    /// feeds `metrics` (see [`PoolMetrics`] for which counters move on
    /// which backend). Attach before the first dispatch for complete
    /// park/wake coverage; the counter family should be registered with
    /// `workers >= self.threads()` so per-worker busy slots exist.
    pub fn attach_metrics(&self, metrics: Arc<PoolMetrics>) {
        assert!(
            metrics.worker_busy.len() >= self.threads,
            "PoolMetrics registered for {} workers, pool has {}",
            metrics.worker_busy.len(),
            self.threads
        );
        if let Some(workers) = &self.persistent {
            *lock(&workers.shared.metrics) = Some(Arc::clone(&metrics));
        }
        *lock(&self.metrics) = Some(metrics);
    }

    /// The attached live counters, if any.
    pub fn metrics(&self) -> Option<Arc<PoolMetrics>> {
        lock(&self.metrics).clone()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's execution strategy.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// The pool's dispatch backend.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Runs `body` once per task range under the pool's strategy — the
    /// `SubmitTaskToPool` + `JoinThreadPool` pair of Algorithm 5. Returns
    /// only after all tasks complete (the paper's phase barrier).
    pub fn run_chunks<F>(&self, tasks: &[Range<u32>], body: F)
    where
        F: Fn(Range<u32>) + Sync,
    {
        self.execute(tasks.len(), |i| body(tasks[i].clone()));
    }

    /// Convenience: chunks `0..n` by `weight` with `threshold` (see
    /// [`weighted_tasks`]), then runs `body` per range. This is the full
    /// Algorithm 5 in one call.
    pub fn run_weighted<W, F>(&self, n: usize, threshold: u64, weight: W, body: F)
    where
        W: FnMut(u32) -> u64,
        F: Fn(Range<u32>) + Sync,
    {
        let tasks = weighted_tasks(n, threshold, self.threads, weight);
        self.run_chunks(&tasks, body);
    }

    /// Parallel for-each over `0..n` with uniform index chunking (used by
    /// uniform-cost phases where degree weighting buys nothing). The
    /// chunking is a pure function of `(n, threads)` so replays under
    /// different strategies cover identical task sets.
    pub fn run_vertices<F>(&self, n: usize, body: F)
    where
        F: Fn(u32) + Sync,
    {
        let tasks = uniform_chunks(n, self.threads);
        self.run_chunks(&tasks, |range| {
            for v in range {
                body(v);
            }
        });
    }

    /// Runs `body` once per item of `items`, mutably and under the pool's
    /// strategy — items dispatch through exactly the same engine as
    /// [`run_chunks`](Self::run_chunks) tasks (one task per item), so
    /// every strategy's ordering and interleaving guarantees carry over.
    /// Used for per-slice work like the GS*-Index's parallel
    /// neighbor-order sorts.
    pub fn run_mut<T, F>(&self, items: &mut [T], body: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        struct SendPtr<T>(*mut T);
        // SAFETY: sharing the base pointer across workers is sound
        // because each index is claimed by exactly one task (below), so
        // the derived `&mut T`s are disjoint; `T: Send` makes handing
        // them to worker threads legal.
        unsafe impl<T: Send> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            /// Keeps the closure capturing the whole `Sync` wrapper, not
            /// the raw pointer field (disjoint closure capture would
            /// otherwise defeat the impl above).
            fn at(&self, i: usize) -> *mut T {
                // SAFETY: caller stays within the original slice.
                unsafe { self.0.add(i) }
            }
        }
        let base = SendPtr(items.as_mut_ptr());
        let body = &body;
        self.execute(items.len(), move |i| {
            // SAFETY: `execute` hands each index in `0..items.len()` to
            // exactly one task, and the dispatch barrier keeps `items`
            // borrowed for the duration — the &mut below never aliases.
            let item = unsafe { &mut *base.at(i) };
            body(item);
        });
    }

    /// Dispatches `num_tasks` logical tasks (`run_task(i)` for each `i in
    /// 0..num_tasks`) under the strategy.
    ///
    /// Every task runs wrapped in the ambient observability context of
    /// the submitting thread (see [`propagate`](ppscan_obs::propagate)):
    /// span collectors, kernel counter scopes, and any other registered
    /// propagator transfer to workers automatically, and each task is
    /// recorded as a span under the submitting thread's current stage.
    /// This is the pool's task-wrapper hook — call sites never touch
    /// scope plumbing.
    fn execute<F>(&self, num_tasks: usize, run_task: F)
    where
        F: Fn(usize) + Sync,
    {
        if num_tasks == 0 {
            return;
        }
        if let Some(metrics) = self.metrics() {
            metrics.dispatches.incr();
            metrics.tasks.add(num_tasks as u64);
        }
        let stage = ppscan_obs::span::current_stage().unwrap_or("task");
        match self.strategy {
            ExecutionStrategy::SequentialDeterministic => {
                // The caller thread acts as worker 0 so per-worker task
                // counts match parallel replays over the same task set.
                let _worker = ppscan_obs::span::enter_worker(0);
                for i in 0..num_tasks {
                    let _span = ppscan_obs::Span::enter(stage);
                    run_task(i);
                }
            }
            ExecutionStrategy::Modeled => {
                // Caller thread, oracle-chosen order: the exhaustive
                // checker's replayable schedule. Each task still runs as
                // its own logical thread under race detection, so an
                // unsynchronized task pair is flagged even though the
                // modeled execution is physically sequential.
                let order = modeled::order_for(num_tasks);
                let fork = ppscan_obs::race::fork_point();
                let _worker = ppscan_obs::span::enter_worker(0);
                for i in order {
                    let _span = ppscan_obs::Span::enter(stage);
                    ppscan_obs::race::task_scope(&fork, || run_task(i));
                }
                fork.join();
            }
            ExecutionStrategy::Parallel => {
                self.dispatch(num_tasks, stage, &run_task, None);
            }
            ExecutionStrategy::AdversarialSeeded { seed } => {
                let order = seeded_permutation(num_tasks, seed);
                self.dispatch(num_tasks, stage, &run_task, Some((order, seed)));
            }
        }
    }

    /// Parallel dispatch: routes to the inline loop (one effective
    /// worker), the persistent work-stealing pool, or the legacy
    /// shared-queue backend. `adversarial` supplies the permuted claim
    /// order and the yield-injection seed.
    fn dispatch<F>(
        &self,
        num_tasks: usize,
        stage: &'static str,
        run_task: &F,
        adversarial: Option<(Vec<usize>, u64)>,
    ) where
        F: Fn(usize) + Sync,
    {
        let (order, seed) = match adversarial {
            Some((order, seed)) => (Some(order), seed),
            None => (None, 0),
        };
        if self.threads.min(num_tasks) <= 1 {
            // One effective worker: run on the caller thread so claim
            // order is exactly the (possibly permuted) position order —
            // the adversarial single-thread replay determinism depends
            // on this.
            let fork = ppscan_obs::race::fork_point();
            let _worker = ppscan_obs::span::enter_worker(0);
            for queue_pos in 0..num_tasks {
                ppscan_obs::race::task_scope(&fork, || {
                    run_position(run_task, stage, order.as_deref(), seed, queue_pos);
                });
            }
            fork.join();
            return;
        }
        match &self.persistent {
            Some(workers) => {
                let fork = ppscan_obs::race::fork_point();
                let ctx = DispatchCtx {
                    run_task,
                    stage,
                    order,
                    seed,
                    deques: deques_for(num_tasks, self.threads),
                    ambient: ppscan_obs::propagate::capture(),
                    fork: fork.clone(),
                    metrics: self.metrics(),
                    panic: Mutex::new(None),
                    abort: AtomicBool::new(false),
                };
                workers.dispatch(self.threads, &ctx);
                fork.join();
            }
            None => self.dispatch_shared_queue(num_tasks, stage, run_task, order.as_deref(), seed),
        }
    }

    /// The legacy backend: workers spawned per dispatch claim the next
    /// position from a single shared atomic cursor.
    fn dispatch_shared_queue<F>(
        &self,
        num_tasks: usize,
        stage: &'static str,
        run_task: &F,
        order: Option<&[usize]>,
        seed: u64,
    ) where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(num_tasks);
        // Capture the submitting thread's ambient context (span
        // collectors, counter scopes, ...) once; each worker attaches it
        // for the duration of its claim loop.
        let ctx = ppscan_obs::propagate::capture();
        let fork = ppscan_obs::race::fork_point();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..workers {
                let next = &next;
                let ctx = &ctx;
                let fork = &fork;
                std::thread::Builder::new()
                    .name(format!("ppscan-worker-{w}"))
                    .spawn_scoped(s, move || {
                        let _worker = ppscan_obs::span::enter_worker(w);
                        let _ctx = ctx.attach();
                        loop {
                            let queue_pos = next.fetch_add(1, Ordering::Relaxed);
                            if queue_pos >= num_tasks {
                                break;
                            }
                            ppscan_obs::race::task_scope(fork, || {
                                run_position(run_task, stage, order, seed, queue_pos);
                            });
                        }
                    })
                    .expect("failed to spawn worker thread");
            }
        });
        fork.join();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorkerPool({} threads, {}, {})",
            self.threads, self.strategy, self.scheduler
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    const ALL_STRATEGIES: [ExecutionStrategy; 5] = [
        ExecutionStrategy::Parallel,
        ExecutionStrategy::SequentialDeterministic,
        ExecutionStrategy::AdversarialSeeded { seed: 1 },
        ExecutionStrategy::AdversarialSeeded { seed: 0xdead_beef },
        ExecutionStrategy::Modeled,
    ];

    #[test]
    fn detector_flags_unordered_dispatch_tasks_on_every_backend() {
        use ppscan_obs::race::{DetectionSession, ShadowCell};
        // Two tasks of one dispatch write the same plain payload with no
        // protocol: the scheduler contract makes them concurrent, so the
        // detector must flag the pair under every parallel-semantics
        // strategy and both dispatch backends — including the physically
        // sequential Modeled execution.
        for scheduler in [SchedulerKind::WorkStealing, SchedulerKind::SharedQueue] {
            for strategy in [
                ExecutionStrategy::Parallel,
                ExecutionStrategy::Modeled,
                ExecutionStrategy::AdversarialSeeded { seed: 7 },
            ] {
                let session = DetectionSession::begin();
                let pool = WorkerPool::with_scheduler(2, strategy, scheduler);
                let cell = ShadowCell::new("dispatch-shared", 0u32);
                pool.run_vertices(4, |v| cell.set(v, "task-write"));
                let races = session.finish();
                assert!(
                    races.iter().any(|r| r.kind == "write-write"),
                    "{strategy} on {scheduler}: expected a race, got {races:?}"
                );
            }
        }
    }

    #[test]
    fn detector_orders_across_dispatch_barriers() {
        use ppscan_obs::race::{DetectionSession, ShadowCell};
        // Task writes in dispatch 1 happen-before task reads in dispatch
        // 2 (join edge → submitter → fork edge), and disjoint per-task
        // writes never race: the clean sweep over every strategy and
        // backend must be silent.
        for scheduler in [SchedulerKind::WorkStealing, SchedulerKind::SharedQueue] {
            for strategy in ALL_STRATEGIES {
                let session = DetectionSession::begin();
                let pool = WorkerPool::with_scheduler(3, strategy, scheduler);
                let cells: Vec<ShadowCell<u32>> =
                    (0..8).map(|_| ShadowCell::new("slot", 0)).collect();
                pool.run_vertices(8, |v| cells[v as usize].set(v + 1, "phase-1"));
                pool.run_vertices(8, |v| {
                    assert_eq!(cells[v as usize].get("phase-2"), v + 1);
                });
                let races = session.finish();
                assert!(
                    races.is_empty(),
                    "{strategy} on {scheduler}: false positive {races:?}"
                );
            }
        }
    }

    #[test]
    fn chunks_cover_exactly() {
        let tasks = chunk_by_weight(10, 5, |_| 2);
        // acc crosses 5 after 3 vertices (6 > 5).
        assert_eq!(tasks, vec![0..3, 3..6, 6..9, 9..10]);
        let covered: u64 = tasks.iter().map(|r| (r.end - r.start) as u64).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn zero_weights_never_cut() {
        let tasks = chunk_by_weight(100, 10, |_| 0);
        assert_eq!(tasks, vec![0..100]);
    }

    #[test]
    fn empty_input() {
        assert!(chunk_by_weight(0, 10, |_| 1).is_empty());
    }

    #[test]
    fn overweight_vertex_isolated() {
        let w = [1u64, 1, 1000, 1, 1];
        let tasks = chunk_by_weight(5, 10, |v| w[v as usize]);
        // The 1000-weight vertex closes its own task immediately.
        assert!(tasks.contains(&(0..3)));
        let total: u32 = tasks.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn skipping_finished_prefix_matches_paper() {
        // Mirrors Algorithm 5: weight 0 for vertices with known roles.
        let known = [true, true, true, false, false, true, false];
        let deg = [9u64, 9, 9, 4, 4, 9, 4];
        let tasks = chunk_by_weight(7, 7, |v| {
            if known[v as usize] {
                0
            } else {
                deg[v as usize]
            }
        });
        // Accumulation: v3 (4), v4 (8 > 7 → cut at 0..5), v6 (4, tail).
        assert_eq!(tasks, vec![0..5, 5..7]);
    }

    #[test]
    fn saturating_weights_do_not_overflow() {
        let tasks = chunk_by_weight(4, u64::MAX, |_| u64::MAX / 2);
        assert_eq!(tasks.last().unwrap().end, 4);
    }

    #[test]
    fn weighted_tasks_split_degenerate_inputs_per_vertex() {
        // Fewer vertices than workers: one task per vertex, not the
        // single under-threshold range the accumulator would emit.
        assert_eq!(
            weighted_tasks(3, u64::MAX, 4, |_| 1),
            vec![0..1, 1..2, 2..3]
        );
        // At or above the worker count: plain Algorithm 5 chunking.
        assert_eq!(weighted_tasks(100, u64::MAX, 4, |_| 1), vec![0..100]);
        assert_eq!(
            weighted_tasks(10, 5, 4, |_| 2),
            chunk_by_weight(10, 5, |_| 2)
        );
        assert!(weighted_tasks(0, 10, 4, |_| 1).is_empty());
    }

    #[test]
    fn run_weighted_covers_degenerate_small_inputs() {
        for strategy in ALL_STRATEGIES {
            let pool = WorkerPool::with_strategy(4, strategy);
            let tasks = AtomicUsize::new(0);
            let visited = AtomicU64::new(0);
            pool.run_weighted(
                3,
                u64::MAX,
                |_| 1,
                |r| {
                    tasks.fetch_add(1, Ordering::Relaxed);
                    for v in r {
                        visited.fetch_add(1 << v, Ordering::Relaxed);
                    }
                },
            );
            assert_eq!(tasks.load(Ordering::Relaxed), 3, "{strategy}");
            assert_eq!(visited.load(Ordering::Relaxed), 0b111, "{strategy}");
        }
    }

    #[test]
    fn scheduler_kind_roundtrip() {
        for kind in [SchedulerKind::WorkStealing, SchedulerKind::SharedQueue] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(
            SchedulerKind::parse("stealing"),
            Some(SchedulerKind::WorkStealing)
        );
        assert_eq!(SchedulerKind::parse("bogus"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::WorkStealing);
    }

    #[test]
    fn deque_owner_and_thief_drain_disjointly() {
        let d = Deque::new(0..3);
        assert!(matches!(d.steal(), Steal::Taken(0)));
        assert_eq!(d.take(), Some(2));
        assert_eq!(d.take(), Some(1)); // last element goes through the CAS race
        assert_eq!(d.take(), None);
        assert!(matches!(d.steal(), Steal::Empty));

        let d = Deque::new(5..6);
        assert_eq!(d.take(), Some(5));
        assert_eq!(d.take(), None);

        let empty = Deque::new(7..7);
        assert_eq!(empty.take(), None);
        assert!(matches!(empty.steal(), Steal::Empty));
    }

    #[test]
    fn deques_partition_positions_exactly() {
        for (num_tasks, workers) in [(10, 3), (3, 8), (0, 4), (1000, 7)] {
            let deques = deques_for(num_tasks, workers);
            assert_eq!(deques.len(), workers);
            let mut seen = vec![false; num_tasks];
            for d in &deques {
                while let Some(pos) = d.take() {
                    assert!(!seen[pos], "position {pos} handed out twice");
                    seen[pos] = true;
                }
            }
            assert!(seen.into_iter().all(|s| s), "{num_tasks}/{workers}");
        }
    }

    #[test]
    fn pool_runs_every_chunk_once_under_every_strategy() {
        for strategy in ALL_STRATEGIES {
            let pool = WorkerPool::with_strategy(4, strategy);
            let tasks = chunk_by_weight(1000, 16, |_| 1);
            let visits = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            pool.run_chunks(&tasks, |r| {
                visits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(visits.load(Ordering::Relaxed), tasks.len(), "{strategy}");
            assert_eq!(sum.load(Ordering::Relaxed), 1000, "{strategy}");
        }
    }

    /// Exactly-once delivery under the stealing backend, shaken across
    /// repeated dispatches on one (reused) pool.
    #[test]
    fn work_stealing_delivers_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        for round in 0..20 {
            let n = 97 + round * 13;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let tasks: Vec<Range<u32>> = (0..n as u32).map(|i| i..i + 1).collect();
            pool.run_chunks(&tasks, |r| {
                hits[r.start as usize].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round}, task {i}");
            }
        }
    }

    /// The stealing backend must reuse its spawned threads: across many
    /// dispatches the set of distinct worker thread ids stays bounded by
    /// the pool size (the legacy backend spawns fresh threads each time).
    #[test]
    fn work_stealing_workers_are_persistent() {
        let pool = WorkerPool::new(2);
        let ids = Mutex::new(std::collections::HashSet::new());
        for _ in 0..5 {
            pool.run_vertices(400, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        }
        let ids = ids.into_inner().unwrap();
        assert!(!ids.is_empty());
        assert!(
            ids.len() <= 2,
            "5 dispatches must reuse the same 2 workers, saw {} ids",
            ids.len()
        );
        assert!(
            !ids.contains(&std::thread::current().id()),
            "tasks run on pool workers, not the submitter"
        );
    }

    #[test]
    fn shared_queue_backend_still_works() {
        for strategy in [
            ExecutionStrategy::Parallel,
            ExecutionStrategy::AdversarialSeeded { seed: 9 },
        ] {
            let pool = WorkerPool::with_scheduler(4, strategy, SchedulerKind::SharedQueue);
            let sum = AtomicU64::new(0);
            pool.run_vertices(257, |v| {
                sum.fetch_add(v as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2, "{strategy}");
        }
    }

    #[test]
    fn run_vertices_visits_all_under_every_strategy() {
        for strategy in ALL_STRATEGIES {
            let pool = WorkerPool::with_strategy(3, strategy);
            let sum = AtomicU64::new(0);
            pool.run_vertices(257, |v| {
                sum.fetch_add(v as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2, "{strategy}");
        }
    }

    #[test]
    fn run_weighted_end_to_end() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run_weighted(
            100,
            8,
            |_| 3,
            |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_mut_visits_every_item() {
        for strategy in ALL_STRATEGIES {
            let pool = WorkerPool::with_strategy(3, strategy);
            let mut items: Vec<u64> = (0..100).collect();
            pool.run_mut(&mut items, |x| *x += 1);
            assert!(
                items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1),
                "{strategy}"
            );
        }
    }

    #[test]
    fn sequential_strategy_preserves_submission_order() {
        let pool = WorkerPool::with_strategy(4, ExecutionStrategy::SequentialDeterministic);
        let log = Mutex::new(Vec::new());
        let tasks: Vec<Range<u32>> = (0..20).map(|i| i..i + 1).collect();
        pool.run_chunks(&tasks, |r| log.lock().unwrap().push(r.start));
        assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn adversarial_permutation_is_seed_deterministic() {
        let order_of = |seed: u64| {
            // Single worker thread: claim order IS execution order.
            let pool = WorkerPool::with_strategy(1, ExecutionStrategy::AdversarialSeeded { seed });
            let log = Mutex::new(Vec::new());
            let tasks: Vec<Range<u32>> = (0..50).map(|i| i..i + 1).collect();
            pool.run_chunks(&tasks, |r| log.lock().unwrap().push(r.start));
            log.into_inner().unwrap()
        };
        assert_eq!(
            order_of(42),
            order_of(42),
            "same seed must replay identically"
        );
        assert_ne!(
            order_of(42),
            order_of(43),
            "different seeds should permute differently"
        );
        let mut sorted = order_of(42);
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<u32>>(),
            "permutation must cover all tasks"
        );
    }

    #[test]
    fn seeded_permutation_is_a_permutation() {
        for seed in [0u64, 1, 99] {
            let mut p = seeded_permutation(257, seed);
            p.sort_unstable();
            assert_eq!(p, (0..257).collect::<Vec<usize>>());
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run_chunks(&[0..5, 5..9], |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn modeled_without_oracle_runs_in_submission_order() {
        let pool = WorkerPool::with_strategy(4, ExecutionStrategy::Modeled);
        let log = Mutex::new(Vec::new());
        let tasks: Vec<Range<u32>> = (0..12).map(|i| i..i + 1).collect();
        pool.run_chunks(&tasks, |r| log.lock().unwrap().push(r.start));
        assert_eq!(*log.lock().unwrap(), (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn modeled_oracle_chooses_the_task_order() {
        let pool = WorkerPool::with_strategy(4, ExecutionStrategy::Modeled);
        let tasks: Vec<Range<u32>> = (0..5).map(|i| i..i + 1).collect();
        let log = Mutex::new(Vec::new());
        modeled::with_oracle(
            |n| (0..n).rev().collect(),
            || pool.run_chunks(&tasks, |r| log.lock().unwrap().push(r.start)),
        );
        assert_eq!(*log.lock().unwrap(), vec![4, 3, 2, 1, 0]);
        // The oracle uninstalls with its scope.
        let log2 = Mutex::new(Vec::new());
        pool.run_chunks(&tasks, |r| log2.lock().unwrap().push(r.start));
        assert_eq!(*log2.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn modeled_oracles_nest_and_restore() {
        let pool = WorkerPool::with_strategy(2, ExecutionStrategy::Modeled);
        let tasks: Vec<Range<u32>> = (0..3).map(|i| i..i + 1).collect();
        let run = |pool: &WorkerPool| {
            let log = Mutex::new(Vec::new());
            pool.run_chunks(&tasks, |r| log.lock().unwrap().push(r.start));
            log.into_inner().unwrap()
        };
        modeled::with_oracle(
            |n| (0..n).rev().collect(),
            || {
                assert_eq!(run(&pool), vec![2, 1, 0]);
                modeled::with_oracle(
                    |n| (0..n).collect(),
                    || assert_eq!(run(&pool), vec![0, 1, 2]),
                );
                // Inner oracle gone: the outer one is back in force.
                assert_eq!(run(&pool), vec![2, 1, 0]);
            },
        );
    }

    #[test]
    fn modeled_rejects_non_permutation_orders() {
        let result = std::panic::catch_unwind(|| {
            let pool = WorkerPool::with_strategy(2, ExecutionStrategy::Modeled);
            modeled::with_oracle(|_| vec![0, 0], || pool.run_chunks(&[0..1, 1..2], |_| {}));
        });
        assert!(result.is_err(), "a duplicate-index order must be rejected");
    }

    #[test]
    fn modeled_run_mut_follows_oracle_order() {
        let pool = WorkerPool::with_strategy(2, ExecutionStrategy::Modeled);
        let mut items: Vec<u64> = vec![0; 4];
        let stamp = AtomicU64::new(0);
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log2 = std::rc::Rc::clone(&log);
        modeled::with_oracle(
            move |n| {
                log2.borrow_mut().push(n);
                (0..n).rev().collect()
            },
            || {
                pool.run_mut(&mut items, |x| {
                    *x = stamp.fetch_add(1, Ordering::Relaxed) + 1;
                });
            },
        );
        assert_eq!(*log.borrow(), vec![4], "one oracle query per dispatch");
        assert_eq!(items, vec![4, 3, 2, 1]);
    }

    #[test]
    fn strategy_display_parse_roundtrip() {
        for strategy in ALL_STRATEGIES {
            let text = strategy.to_string();
            assert_eq!(ExecutionStrategy::parse(&text), Some(strategy), "{text}");
        }
        for bad in [
            "",
            "Parallel",
            "adversarial",
            "adversarial(",
            "adversarial(x)",
        ] {
            assert_eq!(ExecutionStrategy::parse(bad), None, "{bad:?}");
        }
    }

    /// Per-worker span aggregation must be schedule-independent in total:
    /// an adversarial replay distributes tasks differently across workers
    /// than the sequential reference, but per-stage task counts and task
    /// coverage must agree exactly.
    #[test]
    fn span_aggregation_matches_across_strategies() {
        use ppscan_obs::span::{Collector, Span, StageAgg};

        fn run(strategy: ExecutionStrategy) -> Vec<StageAgg> {
            let collector = Collector::new();
            let guard = collector.activate();
            let pool = WorkerPool::with_strategy(4, strategy);
            let tasks = chunk_by_weight(503, 8, |_| 1);
            {
                let _phase = Span::enter("phase-a");
                pool.run_chunks(&tasks, |r| {
                    std::hint::black_box(r.len());
                });
            }
            {
                let _phase = Span::enter("phase-b");
                pool.run_vertices(97, |v| {
                    std::hint::black_box(v);
                });
            }
            drop(guard);
            collector.snapshot()
        }

        let reference = run(ExecutionStrategy::SequentialDeterministic);
        let expected_a = chunk_by_weight(503, 8, |_| 1).len() as u64;
        let ref_a = reference.iter().find(|s| s.stage == "phase-a").unwrap();
        assert_eq!(ref_a.worker_tasks(), expected_a);
        assert_eq!(ref_a.wall_count, 1);

        for strategy in [
            ExecutionStrategy::Parallel,
            ExecutionStrategy::AdversarialSeeded { seed: 7 },
            ExecutionStrategy::AdversarialSeeded { seed: 0xfeed },
        ] {
            let snap = run(strategy);
            for stage in ["phase-a", "phase-b"] {
                let ours = snap.iter().find(|s| s.stage == stage).unwrap();
                let theirs = reference.iter().find(|s| s.stage == stage).unwrap();
                assert_eq!(
                    ours.worker_tasks(),
                    theirs.worker_tasks(),
                    "{strategy}/{stage}: total task count must be schedule-independent"
                );
                assert_eq!(ours.wall_count, 1, "{strategy}/{stage}");
                assert!(
                    ours.workers.len() <= 4,
                    "{strategy}/{stage}: at most `threads` workers"
                );
            }
        }
    }

    #[test]
    fn adversarial_yields_are_reported() {
        use ppscan_obs::span::{Collector, Span};
        let collector = Collector::new();
        let guard = collector.activate();
        let pool = WorkerPool::with_strategy(2, ExecutionStrategy::AdversarialSeeded { seed: 3 });
        {
            let _phase = Span::enter("yielding");
            pool.run_vertices(512, |v| {
                std::hint::black_box(v);
            });
        }
        drop(guard);
        let snap = collector.snapshot();
        let agg = snap.iter().find(|s| s.stage == "yielding").unwrap();
        let yields: u64 = agg.workers.iter().map(|w| w.yields).sum();
        assert!(yields > 0, "seeded yield injection should be observable");
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let pool = WorkerPool::new(2);
            pool.run_chunks(&[0..1, 1..2, 2..3, 3..4], |r| {
                if r.start == 2 {
                    panic!("task failure");
                }
            });
        });
        assert!(result.is_err(), "worker panic must reach the submitter");
    }

    #[test]
    fn task_panic_propagates_under_shared_queue() {
        let result = std::panic::catch_unwind(|| {
            let pool = WorkerPool::with_scheduler(
                2,
                ExecutionStrategy::Parallel,
                SchedulerKind::SharedQueue,
            );
            pool.run_chunks(&[0..1, 1..2, 2..3, 3..4], |r| {
                if r.start == 2 {
                    panic!("task failure");
                }
            });
        });
        assert!(result.is_err(), "worker panic must reach the submitter");
    }

    /// A panic must not wedge the persistent pool: the same pool object
    /// dispatches normally afterwards.
    #[test]
    fn pool_survives_a_task_panic() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_vertices(64, |v| {
                if v == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let sum = AtomicU64::new(0);
        pool.run_vertices(64, |v| {
            sum.fetch_add(v as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 63 * 64 / 2);
    }

    #[test]
    fn pool_metrics_count_dispatches_and_busy_time() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, "sched", 4);
        let pool = WorkerPool::new(4);
        pool.attach_metrics(Arc::clone(&metrics));
        const DISPATCHES: u64 = 5;
        const TASKS: usize = 40;
        let tasks: Vec<Range<u32>> = (0..TASKS as u32).map(|i| i..i + 1).collect();
        for _ in 0..DISPATCHES {
            pool.run_chunks(&tasks, |_| {
                // Enough work that busy time is reliably nonzero.
                std::hint::black_box((0..2000u64).sum::<u64>());
            });
        }
        assert_eq!(metrics.dispatches.value(), DISPATCHES);
        assert_eq!(metrics.tasks.value(), (TASKS as u64) * DISPATCHES);
        let busy: u64 = metrics.worker_busy.iter().map(Counter::value).sum();
        assert!(busy > 0, "workers must accumulate busy time");
        // Workers park between dispatches and wake into the next one;
        // exact counts depend on timing, but after several dispatches
        // both must have moved.
        let snap = registry.snapshot();
        assert!(snap.counter("sched.parks").unwrap() > 0);
        assert!(snap.counter("sched.wakes").unwrap() > 0);
        assert_eq!(snap.counter("sched.dispatches"), Some(DISPATCHES));
    }

    #[test]
    fn pool_metrics_count_on_caller_thread_strategies() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, "sched", 2);
        let pool = WorkerPool::with_strategy(2, ExecutionStrategy::SequentialDeterministic);
        pool.attach_metrics(Arc::clone(&metrics));
        pool.run_chunks(&[0..1, 1..2, 2..3], |_| {});
        // Dispatch/task counting is strategy-independent; the persistent
        // backend counters stay 0 (no workers exist to park or steal).
        assert_eq!(metrics.dispatches.value(), 1);
        assert_eq!(metrics.tasks.value(), 3);
        assert_eq!(metrics.parks.value(), 0);
        assert_eq!(metrics.steals.value(), 0);
    }

    #[test]
    #[should_panic(expected = "PoolMetrics registered for")]
    fn attach_rejects_undersized_metrics() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, "sched", 1);
        let pool = WorkerPool::new(3);
        pool.attach_metrics(metrics);
    }

    /// Steals land in the attached metrics: dispatch positions split
    /// contiguously across workers, so making worker 0's quarter slow
    /// and everyone else's instant leaves workers 1..3 idle with a
    /// stealable backlog sitting in worker 0's deque.
    #[test]
    fn pool_metrics_observe_steals_under_imbalance() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, "sched", 4);
        let pool = WorkerPool::new(4);
        pool.attach_metrics(Arc::clone(&metrics));
        let tasks: Vec<Range<u32>> = (0..16u32).map(|i| i..i + 1).collect();
        for _ in 0..10 {
            pool.run_chunks(&tasks, |r| {
                if r.start < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
            if metrics.steals.value() > 0 {
                return;
            }
        }
        panic!("no steals observed across 10 imbalanced dispatches");
    }
}
