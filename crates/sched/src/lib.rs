//! # ppscan-sched
//!
//! Degree-based dynamic task scheduling (paper §4.4, Algorithm 5).
//!
//! ppSCAN bundles vertex computations into tasks by accumulating the
//! degrees of vertices that still require work and cutting a task every
//! time the running sum exceeds a threshold (32768 in the paper's tuned
//! setting). Tasks are contiguous vertex ranges — so worker threads touch
//! adjacent regions of the CSR `dst`/`sim` arrays — and are executed on a
//! work-stealing thread pool.
//!
//! This crate provides that scheduler as a reusable primitive:
//!
//! * [`chunk_by_weight`] reproduces Algorithm 5's master-thread loop:
//!   given a per-vertex weight (degree, or 0 for vertices whose role is
//!   already known), it emits the task ranges.
//! * [`WorkerPool`] owns a rayon thread pool of an explicit size and runs
//!   a closure over every task range in parallel ([`WorkerPool::run_chunks`]),
//!   or over per-vertex indices ([`WorkerPool::run_vertices`]).
//!
//! ```
//! use ppscan_sched::{chunk_by_weight, WorkerPool, DEFAULT_DEGREE_THRESHOLD};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let degrees = [100u64, 1, 1, 50_000, 2, 2];
//! let tasks = chunk_by_weight(6, 64, |v| degrees[v as usize]);
//! assert!(tasks.len() > 1); // the heavy vertex forces a cut
//!
//! let pool = WorkerPool::new(2);
//! let sum = AtomicU64::new(0);
//! pool.run_chunks(&tasks, |range| {
//!     for v in range {
//!         sum.fetch_add(degrees[v as usize], Ordering::Relaxed);
//!     }
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), degrees.iter().sum::<u64>());
//! let _ = DEFAULT_DEGREE_THRESHOLD;
//! ```

use std::ops::Range;

/// The paper's tuned degree-sum threshold: "when the degree sum is above
/// the threshold 32768 … a task is submitted". Tuned by doubling from 1
/// until the task-queue maintenance cost became negligible (§4.4).
pub const DEFAULT_DEGREE_THRESHOLD: u64 = 32_768;

/// Algorithm 5's master-thread loop: walks vertices `0..n`, accumulates
/// `weight(v)` and cuts a task range whenever the accumulated sum exceeds
/// `threshold`. Vertices with weight 0 (no work required — e.g. role
/// already known) still belong to some range, but never force cuts, so a
/// long prefix of finished vertices costs nothing.
///
/// Returns contiguous, disjoint ranges exactly covering `0..n` (no range
/// for `n = 0`). Every range except possibly the last has accumulated
/// weight exceeding `threshold` or is a single overweight vertex.
pub fn chunk_by_weight(
    n: usize,
    threshold: u64,
    mut weight: impl FnMut(u32) -> u64,
) -> Vec<Range<u32>> {
    let mut tasks = Vec::new();
    let mut beg = 0u32;
    let mut acc = 0u64;
    for v in 0..n as u32 {
        acc = acc.saturating_add(weight(v));
        if acc > threshold {
            tasks.push(beg..v + 1);
            beg = v + 1;
            acc = 0;
        }
    }
    if (beg as usize) < n {
        tasks.push(beg..n as u32);
    }
    tasks
}

/// A fixed-size work-stealing pool (rayon) with the submission helpers
/// the multi-phase algorithms need. One pool is built per algorithm run
/// so the thread count is an explicit experiment parameter (Figure 6
/// sweeps it from 1 to 256).
pub struct WorkerPool {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl WorkerPool {
    /// Builds a pool with exactly `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the pool cannot be spawned.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("ppscan-worker-{i}"))
            .build()
            .expect("failed to build worker pool");
        Self { pool, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body` once per task range, in parallel with dynamic
    /// (work-stealing) scheduling — the `SubmitTaskToPool` +
    /// `JoinThreadPool` pair of Algorithm 5. Returns only after all tasks
    /// complete (the paper's phase barrier).
    pub fn run_chunks<F>(&self, tasks: &[Range<u32>], body: F)
    where
        F: Fn(Range<u32>) + Sync,
    {
        self.pool.install(|| {
            rayon::scope(|s| {
                for t in tasks {
                    let body = &body;
                    let t = t.clone();
                    s.spawn(move |_| body(t));
                }
            });
        });
    }

    /// Convenience: chunks `0..n` by `weight` with `threshold`, then runs
    /// `body` per range. This is the full Algorithm 5 in one call.
    pub fn run_weighted<W, F>(&self, n: usize, threshold: u64, weight: W, body: F)
    where
        W: FnMut(u32) -> u64,
        F: Fn(Range<u32>) + Sync,
    {
        let tasks = chunk_by_weight(n, threshold, weight);
        self.run_chunks(&tasks, body);
    }

    /// Parallel for-each over `0..n` with rayon's default index chunking
    /// (used by uniform-cost phases where degree weighting buys nothing).
    pub fn run_vertices<F>(&self, n: usize, body: F)
    where
        F: Fn(u32) + Sync,
    {
        use rayon::prelude::*;
        self.pool
            .install(|| (0..n as u32).into_par_iter().for_each(|v| body(v)));
    }

    /// Runs an arbitrary closure inside the pool (for parallel iterators
    /// in caller code that should obey this pool's thread count).
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        self.pool.install(op)
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({} threads)", self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_exactly() {
        let tasks = chunk_by_weight(10, 5, |_| 2);
        // acc crosses 5 after 3 vertices (6 > 5).
        assert_eq!(tasks, vec![0..3, 3..6, 6..9, 9..10]);
        let covered: u64 = tasks.iter().map(|r| (r.end - r.start) as u64).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn zero_weights_never_cut() {
        let tasks = chunk_by_weight(100, 10, |_| 0);
        assert_eq!(tasks, vec![0..100]);
    }

    #[test]
    fn empty_input() {
        assert!(chunk_by_weight(0, 10, |_| 1).is_empty());
    }

    #[test]
    fn overweight_vertex_isolated() {
        let w = [1u64, 1, 1000, 1, 1];
        let tasks = chunk_by_weight(5, 10, |v| w[v as usize]);
        // The 1000-weight vertex closes its own task immediately.
        assert!(tasks.contains(&(0..3)));
        let total: u32 = tasks.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn skipping_finished_prefix_matches_paper() {
        // Mirrors Algorithm 5: weight 0 for vertices with known roles.
        let known = [true, true, true, false, false, true, false];
        let deg = [9u64, 9, 9, 4, 4, 9, 4];
        let tasks = chunk_by_weight(7, 7, |v| if known[v as usize] { 0 } else { deg[v as usize] });
        // Accumulation: v3 (4), v4 (8 > 7 → cut at 0..5), v6 (4, tail).
        assert_eq!(tasks, vec![0..5, 5..7]);
    }

    #[test]
    fn saturating_weights_do_not_overflow() {
        let tasks = chunk_by_weight(4, u64::MAX, |_| u64::MAX / 2);
        assert_eq!(tasks.last().unwrap().end, 4);
    }

    #[test]
    fn pool_runs_every_chunk_once() {
        let pool = WorkerPool::new(4);
        let tasks = chunk_by_weight(1000, 16, |_| 1);
        let visits = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        pool.run_chunks(&tasks, |r| {
            visits.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), tasks.len());
        assert_eq!(sum.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_vertices_visits_all() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        pool.run_vertices(257, |v| {
            sum.fetch_add(v as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2);
    }

    #[test]
    fn run_weighted_end_to_end() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run_weighted(100, 8, |_| 3, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run_chunks(&[0..5, 5..9], |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
