//! Command-line interface for the ppscan library: cluster a graph file,
//! inspect statistics, generate synthetic datasets, convert formats.
//!
//! ```text
//! ppscan-cli stats    <graph>
//! ppscan-cli cluster  <graph> --eps 0.5 --mu 5 [--threads N] [--kernel K]
//!                     [--output FILE] [--classify]
//! ppscan-cli generate <roll|rmat|er|sbm> --out FILE [generator options]
//! ppscan-cli convert  <in> <out>      # .txt ↔ .bin by extension
//! ```
//!
//! Graph files ending in `.bin` use the compact binary CSR format;
//! anything else is parsed as a SNAP-style edge list.

use ppscan::prelude::*;
use ppscan_core::ppscan::ppscan as run_ppscan;
use ppscan_graph::{gen, io, CsrGraph, GraphStats};
use std::io::Write as _;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: ppscan-cli <stats|cluster|generate|convert> ...\n\
                 run `ppscan-cli <command> --help` for details"
            );
            if args.is_empty() {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("unknown command: {other}");
            2
        }
    };
    exit(code);
}

fn load(path: &str) -> CsrGraph {
    let result = if path.ends_with(".bin") {
        io::read_binary_file(path)
    } else {
        io::read_edge_list_file(path)
    };
    result.unwrap_or_else(|e| {
        eprintln!("failed to load {path}: {e}");
        exit(1);
    })
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Validates the complete argument list of a subcommand before any flag
/// is read: every `--flag` must be known to the command (value-taking
/// flags consume the following token), and at most `max_positional`
/// bare arguments are allowed. `flag_value` alone only *scans for*
/// known names, so a typo like `--epsilonn 0.5` used to run silently
/// with the default ε.
fn validate_args(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
    max_positional: usize,
    usage: &str,
) -> Result<(), i32> {
    let mut positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                if i + 1 >= args.len() {
                    eprintln!("missing value for {a}\n{usage}");
                    return Err(2);
                }
                i += 1; // skip the flag's value
            } else if !bool_flags.contains(&a) {
                eprintln!("unknown flag {a}\n{usage}");
                return Err(2);
            }
        } else {
            positionals += 1;
            if positionals > max_positional {
                eprintln!("unexpected argument {a:?}\n{usage}");
                return Err(2);
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_or_exit<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: {s}");
        exit(2)
    })
}

fn cmd_stats(args: &[String]) -> i32 {
    let usage = "usage: ppscan-cli stats <graph>";
    if let Err(code) = validate_args(args, &[], &[], 1, usage) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let g = load(path);
    let s = GraphStats::of(&g);
    println!("{}", GraphStats::table_header());
    println!("{}", s.table_row(path));
    println!("median degree : {}", s.median_degree);
    println!("degree skew   : {:.1}", s.skew);
    println!(
        "SCAN workload : {} (2 Σ d²)",
        ppscan_graph::stats::scan_workload(&g)
    );
    println!(
        "heap          : {:.1} MiB",
        g.heap_bytes() as f64 / (1 << 20) as f64
    );
    0
}

fn cmd_cluster(args: &[String]) -> i32 {
    let usage = "usage: ppscan-cli cluster <graph> --eps E --mu M \
                 [--threads N] [--kernel merge|pivot-avx512|block-avx512|...] \
                 [--output FILE] [--classify]";
    if args.is_empty() || args.iter().any(|a| a == "--help") {
        eprintln!("{usage}");
        return if args.is_empty() { 2 } else { 0 };
    }
    if let Err(code) = validate_args(
        args,
        &["--eps", "--mu", "--threads", "--kernel", "--output"],
        &["--classify"],
        1,
        usage,
    ) {
        return code;
    }
    let path = &args[0];
    let eps: f64 = parse_or_exit(flag_value(args, "--eps").unwrap_or("0.5"), "--eps");
    let mu: usize = parse_or_exit(flag_value(args, "--mu").unwrap_or("5"), "--mu");
    let mut config = PpScanConfig::default();
    if let Some(t) = flag_value(args, "--threads") {
        config.threads = parse_or_exit(t, "--threads");
    }
    if let Some(k) = flag_value(args, "--kernel") {
        config.kernel = Kernel::parse(k).unwrap_or_else(|| {
            eprintln!("unknown kernel {k}");
            exit(2)
        });
        if !config.kernel.available() {
            eprintln!("kernel {} not supported on this CPU", config.kernel);
            return 1;
        }
    }

    let g = load(path);
    eprintln!(
        "loaded {}: {} vertices, {} edges",
        path,
        g.num_vertices(),
        g.num_edges()
    );
    let t0 = std::time::Instant::now();
    let out = run_ppscan(&g, ScanParams::new(eps, mu), &config);
    eprintln!(
        "ppSCAN(eps={eps}, mu={mu}, {} threads, {}) took {:?}",
        config.threads,
        config.kernel,
        t0.elapsed()
    );
    println!("{}", out.clustering.summary());

    if args.iter().any(|a| a == "--classify") {
        let classes = out.clustering.classify_unclustered(&g);
        let hubs = classes
            .iter()
            .filter(|c| matches!(c, UnclusteredClass::Hub))
            .count();
        let outliers = classes
            .iter()
            .filter(|c| matches!(c, UnclusteredClass::Outlier))
            .count();
        println!("hubs: {hubs}, outliers: {outliers}");
    }

    if let Some(path) = flag_value(args, "--output") {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1)
        }));
        writeln!(w, "# vertex cluster_id (one line per membership)").unwrap();
        for (cid, members) in out.clustering.clusters() {
            for v in members {
                writeln!(w, "{v} {cid}").unwrap();
            }
        }
        eprintln!("memberships written to {path}");
    }
    0
}

fn cmd_generate(args: &[String]) -> i32 {
    let usage = "usage: ppscan-cli generate <roll|rmat|er|sbm> --out FILE \
                 [--n N] [--degree D] [--scale S] [--edges M] [--blocks B] \
                 [--block-size K] [--p-in P] [--p-out Q] [--seed S]";
    if let Err(code) = validate_args(
        args,
        &[
            "--out",
            "--n",
            "--degree",
            "--scale",
            "--edges",
            "--blocks",
            "--block-size",
            "--p-in",
            "--p-out",
            "--seed",
        ],
        &[],
        1,
        usage,
    ) {
        return code;
    }
    let Some(kind) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("{usage}");
        return 2;
    };
    let seed: u64 = parse_or_exit(flag_value(args, "--seed").unwrap_or("42"), "--seed");
    let n: usize = parse_or_exit(flag_value(args, "--n").unwrap_or("10000"), "--n");
    let g = match kind.as_str() {
        "roll" => {
            let d: usize = parse_or_exit(flag_value(args, "--degree").unwrap_or("16"), "--degree");
            gen::roll(n, d, seed)
        }
        "rmat" => {
            let scale: u32 = parse_or_exit(flag_value(args, "--scale").unwrap_or("14"), "--scale");
            let d: usize = parse_or_exit(flag_value(args, "--degree").unwrap_or("16"), "--degree");
            gen::rmat_social(scale, d, seed)
        }
        "er" => {
            let m: usize = parse_or_exit(flag_value(args, "--edges").unwrap_or("50000"), "--edges");
            gen::erdos_renyi(n, m, seed)
        }
        "sbm" => {
            let blocks: usize =
                parse_or_exit(flag_value(args, "--blocks").unwrap_or("8"), "--blocks");
            let k: usize = parse_or_exit(
                flag_value(args, "--block-size").unwrap_or("64"),
                "--block-size",
            );
            let p_in: f64 = parse_or_exit(flag_value(args, "--p-in").unwrap_or("0.3"), "--p-in");
            let p_out: f64 =
                parse_or_exit(flag_value(args, "--p-out").unwrap_or("0.005"), "--p-out");
            gen::planted_partition(blocks, k, p_in, p_out, seed)
        }
        other => {
            eprintln!("unknown generator {other}\n{usage}");
            return 2;
        }
    };
    let result = if out.ends_with(".bin") {
        io::write_binary_file(&g, out)
    } else {
        std::fs::File::create(out).and_then(|f| io::write_edge_list(&g, std::io::BufWriter::new(f)))
    };
    if let Err(e) = result {
        eprintln!("failed to write {out}: {e}");
        return 1;
    }
    eprintln!(
        "wrote {out}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    0
}

fn cmd_convert(args: &[String]) -> i32 {
    let usage = "usage: ppscan-cli convert <in> <out>";
    if let Err(code) = validate_args(args, &[], &[], 2, usage) {
        return code;
    }
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        eprintln!("{usage}");
        return 2;
    };
    let g = load(input);
    let result = if output.ends_with(".bin") {
        io::write_binary_file(&g, output)
    } else {
        std::fs::File::create(output)
            .and_then(|f| io::write_edge_list(&g, std::io::BufWriter::new(f)))
    };
    if let Err(e) = result {
        eprintln!("failed to write {output}: {e}");
        return 1;
    }
    eprintln!("converted {input} → {output}");
    0
}
