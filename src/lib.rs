//! # ppscan
//!
//! A Rust reproduction of **"Parallelizing Pruning-based Graph Structural
//! Clustering"** (Che, Sun, Luo — ICPP 2018): the parallel **ppSCAN**
//! algorithm with pivot-based vectorized set intersection, plus every
//! baseline from the paper's evaluation (SCAN, pSCAN, SCAN-XP-style,
//! anySCAN-style) and the substrates they run on.
//!
//! ## Quick start
//!
//! ```
//! use ppscan::prelude::*;
//!
//! // Build (or load) an undirected graph.
//! let graph = ppscan::graph::gen::planted_partition(4, 50, 0.5, 0.01, 42);
//!
//! // Cluster it: ε = 0.5, µ = 4, all cores, SIMD kernel auto-detected.
//! let params = ScanParams::new(0.5, 4);
//! let output = ppscan::cluster(&graph, params);
//!
//! println!("{}", output.clustering.summary());
//! assert_eq!(output.clustering.num_clusters(), 4); // recovers the blocks
//! ```
//!
//! ## Crate map
//!
//! * [`graph`] — CSR substrate, I/O, generators, statistics
//!   (`ppscan-graph`).
//! * [`intersect`] — the `CompSim` kernels: merge / galloping / pivot
//!   scalar / pivot AVX2 / pivot AVX-512, all with the paper's
//!   early-termination bounds (`ppscan-intersect`).
//! * [`unionfind`] — sequential and wait-free concurrent disjoint sets
//!   (`ppscan-unionfind`).
//! * [`gsindex`] — a GS*-Index-style similarity index answering arbitrary
//!   `(ε, µ)` queries without recomputation (`ppscan-gsindex`).
//! * [`sched`] — the degree-based dynamic task scheduler
//!   (`ppscan-sched`).
//! * [`core`] — the algorithms themselves (`ppscan-core`).
//! * [`serve`] — a long-lived clustering service over the index:
//!   batched concurrent queries, non-blocking index swaps
//!   (`ppscan-serve`).
//! * [`update`] — incremental re-clustering on streaming edge updates:
//!   batched deltas, localized index maintenance, union-find surgery
//!   (`ppscan-update`).
//!
//! See `DESIGN.md` for the paper-to-module inventory and
//! `EXPERIMENTS.md` for the reproduced evaluation.

pub use ppscan_core as core;
pub use ppscan_graph as graph;
pub use ppscan_gsindex as gsindex;
pub use ppscan_intersect as intersect;
pub use ppscan_obs as obs;
pub use ppscan_sched as sched;
pub use ppscan_serve as serve;
pub use ppscan_unionfind as unionfind;
pub use ppscan_update as update;

/// One-stop imports for typical use.
pub mod prelude {
    pub use ppscan_core::params::ScanParams;
    pub use ppscan_core::ppscan::{ppscan, PpScanConfig, PpScanOutput};
    pub use ppscan_core::result::{Clustering, Role, UnclusteredClass};
    pub use ppscan_graph::{CsrGraph, GraphBuilder};
    pub use ppscan_intersect::Kernel;
}

use prelude::*;

/// Clusters `graph` with ppSCAN under the default configuration (all
/// available threads, widest SIMD kernel). For full control over threads,
/// kernel and scheduler threshold use [`ppscan_core::ppscan::ppscan`]
/// directly.
pub fn cluster(graph: &CsrGraph, params: ScanParams) -> PpScanOutput {
    ppscan(graph, params, &PpScanConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_cluster_runs() {
        let g = graph::gen::clique_chain(5, 3);
        let out = cluster(&g, ScanParams::new(0.8, 3));
        assert_eq!(out.clustering.num_clusters(), 3);
    }
}
